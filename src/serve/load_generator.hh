/**
 * @file
 * Fleet-scale multi-tenant serving simulator: an open-loop load
 * generator drives secure inference sessions from thousands of
 * tenants across a heterogeneous xPU fleet and reports SLO
 * percentiles (TTFT, TPS, end-to-end latency).
 *
 * Every tenant owns a Poisson or trace-driven ArrivalProcess fed by
 * its own Rng stream (derived from one root seed), an owned arrival
 * timer, and an owned SLO-deadline timer that is re-armed on every
 * arrival and descheduled on completion — the deschedule/reschedule
 * churn pattern the hierarchical timer wheel makes O(1). Devices
 * model prefill and per-token decode with the same roofline formulas
 * as llm::InferenceEngine, scaled by a secure-mode overhead factor,
 * so the SLO numbers line up with the single-request benchmarks.
 */

#ifndef CCAI_SERVE_LOAD_GENERATOR_HH
#define CCAI_SERVE_LOAD_GENERATOR_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "backend/protection_backend.hh"
#include "llm/model_spec.hh"
#include "serve/arrival.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "xpu/xpu_spec.hh"

namespace ccai::serve
{

/** Workload shape shared by every tenant. */
struct TenantProfile
{
    /** Aggregate offered load (req/s) split evenly over tenants. */
    double aggregateRatePerSec = 20.0;
    /** Optional inter-arrival trace (ticks); overrides Poisson. */
    std::vector<Tick> traceGaps;
    std::uint32_t promptTokens = 128;
    std::uint32_t genTokens = 32;
    /** Per-request completion deadline for the SLO-miss counter. */
    Tick sloDeadline = 8 * kTicksPerSec;
};

/** One serving experiment's configuration. */
struct ServeConfig
{
    std::uint32_t tenants = 100;
    std::uint64_t seed = 1;
    /** Arrivals stop here; queued work drains afterwards. */
    Tick horizon = 20 * kTicksPerSec;
    /** 0 = unbounded until the horizon. */
    std::uint32_t maxRequestsPerTenant = 0;

    /**
     * Secure sessions: compute inflated by the protection backend's
     * compute-overhead factor plus its per-request setup cost, both
     * taken from backend::costModelFor(protection). This replaces
     * the old free-floating secureComputeOverhead/secureSetupTicks
     * knobs, which duplicated the backend cost model.
     */
    bool secure = true;
    backend::Kind protection = backend::Kind::CcaiSc;

    llm::ModelSpec model = llm::ModelSpec::llama2_7b();
    /** Fleet devices; tenants are assigned round-robin. */
    std::vector<xpu::XpuSpec> fleet;
    TenantProfile profile;
};

/** Aggregated SLO results of one run (simulated time only). */
struct ServeReport
{
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    std::uint64_t sloMisses = 0;
    double simSeconds = 0.0;

    double ttftP50 = 0.0, ttftP95 = 0.0, ttftP99 = 0.0;
    double tpsP50 = 0.0, tpsP5 = 0.0;
    double e2eP50 = 0.0, e2eP95 = 0.0, e2eP99 = 0.0;
};

/**
 * The load generator. start() arms every tenant's first arrival;
 * running the event queue to drain then completes all admitted
 * requests. Identical (config, seed) pairs replay identically.
 */
class LoadGenerator : public sim::SimObject
{
  public:
    LoadGenerator(sim::System &sys, std::string name,
                  const ServeConfig &config);

    /** Schedule every tenant's first arrival. */
    void start();

    /** Aggregate results (call after the queue drained). */
    ServeReport report() const;

    std::uint64_t issued() const { return issued_; }
    std::uint64_t completed() const { return completed_; }

    void reset() override;

  private:
    struct Request
    {
        std::uint32_t tenant = 0;
        Tick arrival = 0;
        Tick ttftTick = 0; ///< prefill completion (0 = pending)
        std::uint32_t stepsDone = 0;
    };

    struct TenantState
    {
        sim::Rng rng;
        std::uint64_t seed; ///< kept so reset() replays the stream
        ArrivalProcess arrivals;
        std::uint32_t device = 0;
        std::uint32_t issued = 0;
        std::uint32_t outstanding = 0;
        sim::EventFunctionWrapper arrivalTimer;
        sim::EventFunctionWrapper deadlineTimer;

        TenantState(std::uint64_t seed_, ArrivalProcess ap)
            : rng(seed_), seed(seed_), arrivals(std::move(ap))
        {}
    };

    struct DeviceState
    {
        xpu::XpuSpec spec;
        std::deque<Request> queue;
        Request active;
        bool busy = false;
        bool prefilling = false;
        sim::EventFunctionWrapper stepTimer;
    };

    void onArrival(std::uint32_t tenant);
    void onDeadline(std::uint32_t tenant);
    void onDeviceStep(std::uint32_t device);
    void startNext(std::uint32_t device);

    Tick prefillTicks(const DeviceState &dev) const;
    Tick decodeStepTicks(const DeviceState &dev,
                         std::uint32_t seqLen) const;
    Tick secureScaled(Tick t) const;

    ServeConfig config_;
    /** Resolved once from config_.protection. */
    backend::CostModel cost_;
    std::vector<std::unique_ptr<TenantState>> tenants_;
    std::vector<std::unique_ptr<DeviceState>> devices_;

    std::uint64_t issued_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t sloMisses_ = 0;
    std::vector<double> ttftSeconds_;
    std::vector<double> tpsValues_;
    std::vector<double> e2eSeconds_;

    sim::StatGroup stats_;
    struct Handles
    {
        explicit Handles(sim::StatGroup &g);
        obs::CounterHandle issued;
        obs::CounterHandle completed;
        obs::CounterHandle sloMisses;
        obs::HistogramHandle ttftTicks;
        obs::HistogramHandle e2eTicks;
    } s_;
};

} // namespace ccai::serve

#endif // CCAI_SERVE_LOAD_GENERATOR_HH
