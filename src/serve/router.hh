/**
 * @file
 * Health-aware least-loaded fleet router. Replaces the static
 * tenant->device pinning of the original load generator: each
 * request is placed on the Healthy device with the earliest
 * estimated completion (its queued backlog plus this request's
 * roofline service estimate there), so a slow or crashed device
 * stops attracting work instead of stalling its pinned tenants.
 *
 * The router mirrors fleet state the load generator owns — queue
 * depth, backlog ticks, the ccai::RecoveryState each device is in
 * (Healthy serves; Resetting/ReAttesting devices are crash victims
 * walking reset -> re-attest -> rejoin). Ties break on the lowest
 * device index, keeping placement deterministic under replay.
 */

#ifndef CCAI_SERVE_ROUTER_HH
#define CCAI_SERVE_ROUTER_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "ccai/chaos.hh"
#include "common/types.hh"

namespace ccai::serve
{

/** Routing-relevant view of one fleet device. */
struct DeviceStatus
{
    RecoveryState state = RecoveryState::Healthy;
    /** Queued requests (excluding the active one). */
    std::uint32_t queueDepth = 0;
    /** Roofline estimate of all queued + in-flight work (ticks). */
    Tick backlogTicks = 0;
};

class FleetRouter
{
  public:
    explicit FleetRouter(std::uint32_t deviceCount)
        : devices_(deviceCount)
    {}

    DeviceStatus &device(std::uint32_t d) { return devices_[d]; }
    const DeviceStatus &device(std::uint32_t d) const
    {
        return devices_[d];
    }

    std::uint32_t deviceCount() const
    {
        return static_cast<std::uint32_t>(devices_.size());
    }

    bool healthy(std::uint32_t d) const
    {
        return devices_[d].state == RecoveryState::Healthy;
    }

    std::uint32_t healthyCount() const;

    /**
     * Health score of one device for @p serviceEstimate ticks of new
     * work: its estimated completion delay. Lower is better;
     * non-Healthy devices score unplaceable (nullopt).
     */
    std::optional<Tick> score(std::uint32_t d,
                              Tick serviceEstimate) const
    {
        if (!healthy(d))
            return std::nullopt;
        return devices_[d].backlogTicks + serviceEstimate;
    }

    /**
     * Least-loaded Healthy device for a request whose per-device
     * service estimate is @p serviceEstimate(d); nullopt when the
     * whole fleet is down. Ties pick the lowest index.
     */
    std::optional<std::uint32_t>
    pick(const std::function<Tick(std::uint32_t)> &serviceEstimate)
        const;

    /** All devices Healthy with empty books (reset-replay). */
    void reset();

  private:
    std::vector<DeviceStatus> devices_;
};

} // namespace ccai::serve

#endif // CCAI_SERVE_ROUTER_HH
