#include "serve/router.hh"

namespace ccai::serve
{

std::uint32_t
FleetRouter::healthyCount() const
{
    std::uint32_t n = 0;
    for (const DeviceStatus &dev : devices_)
        if (dev.state == RecoveryState::Healthy)
            ++n;
    return n;
}

std::optional<std::uint32_t>
FleetRouter::pick(
    const std::function<Tick(std::uint32_t)> &serviceEstimate) const
{
    std::optional<std::uint32_t> best;
    Tick bestScore = 0;
    for (std::uint32_t d = 0; d < deviceCount(); ++d) {
        std::optional<Tick> s = score(d, serviceEstimate(d));
        if (!s)
            continue;
        if (!best || *s < bestScore) {
            best = d;
            bestScore = *s;
        }
    }
    return best;
}

void
FleetRouter::reset()
{
    for (DeviceStatus &dev : devices_)
        dev = DeviceStatus{};
}

} // namespace ccai::serve
