/**
 * @file
 * Admission control for the serving control plane: per-tenant
 * token-bucket rate limiting, bounded per-device queues and
 * deadline-feasibility shedding, decided once at arrival so an
 * overloaded fleet rejects work it cannot finish instead of
 * queueing it into guaranteed SLO misses.
 *
 * Everything here is deterministic: the token bucket refills lazily
 * from elapsed simulated ticks (no wall clock, no randomness), so a
 * replay with the same seed and config reproduces every admit/shed
 * decision bit for bit.
 */

#ifndef CCAI_SERVE_ADMISSION_HH
#define CCAI_SERVE_ADMISSION_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace ccai::serve
{

/** Admission policy knobs. Defaults keep every check disabled. */
struct AdmissionConfig
{
    /** Master switch; false restores the admit-everything plane. */
    bool enabled = false;
    /** Per-tenant sustained admit rate (req/s); 0 = no rate limit. */
    double tokenRatePerSec = 0.0;
    /** Burst capacity of each tenant's bucket, in requests. */
    double tokenBurst = 8.0;
    /** Per-device queue bound (requests); 0 = unbounded. */
    std::uint32_t maxQueueDepth = 0;
    /**
     * Shed requests whose roofline completion estimate already
     * overruns their deadline — at admission and again at dispatch.
     */
    bool deadlineShedding = false;
};

/** Outcome of one admission attempt. */
enum class AdmitDecision
{
    Admit,
    ShedRate,      ///< tenant token bucket empty
    ShedQueueFull, ///< target device queue at its bound
    ShedDeadline,  ///< completion estimate overruns the deadline
    ShedNoDevice,  ///< no healthy device in the fleet
};

/** Stable lowercase name ("admit", "shed_rate", ...). */
const char *admitDecisionName(AdmitDecision decision);

/** May a retry later succeed where this decision shed? */
inline bool
retryable(AdmitDecision decision)
{
    // Deadline sheds are final: waiting only moves the estimate
    // further past the deadline. Everything else is transient.
    return decision == AdmitDecision::ShedRate ||
           decision == AdmitDecision::ShedQueueFull ||
           decision == AdmitDecision::ShedNoDevice;
}

/**
 * Deterministic token bucket over simulated time. Tokens refill
 * lazily on each tryTake from the tick delta since the last refill,
 * capped at the burst size.
 */
class TokenBucket
{
  public:
    TokenBucket() = default;
    TokenBucket(double ratePerSec, double burst);

    /** Consume one token at @p now; false when the bucket is dry. */
    bool tryTake(Tick now);

    /** Refill to a full burst and restart the clock (replay). */
    void reset();

    double tokens() const { return tokens_; }

  private:
    double ratePerTick_ = 0.0;
    double burst_ = 0.0;
    double tokens_ = 0.0;
    Tick lastRefill_ = 0;
};

/**
 * One admission attempt's inputs, gathered by the caller (the load
 * generator knows the router's device pick and the roofline service
 * estimate; admission only applies policy to them).
 */
struct AdmitContext
{
    std::uint32_t tenant = 0;
    Tick now = 0;
    /** Router found a Healthy device for this request. */
    bool deviceAvailable = false;
    /** Queue depth on the chosen device. */
    std::uint32_t queueDepth = 0;
    /** now + device backlog + this request's service estimate. */
    Tick estimatedCompletion = 0;
    /** Absolute completion deadline (firstArrival + sloDeadline). */
    Tick deadline = 0;
    /**
     * Crash-drain re-placements bypass the token bucket and the
     * queue bound: the request was already admitted once and must
     * not be lost to its device dying.
     */
    bool rerouted = false;
};

/**
 * The per-fleet admission controller: one token bucket per tenant
 * plus the stateless queue/deadline checks, applied in a fixed
 * order (device -> rate -> queue -> deadline) so replays shed for
 * identical reasons.
 */
class AdmissionController
{
  public:
    AdmissionController(const AdmissionConfig &config,
                        std::uint32_t tenants);

    /**
     * Decide one attempt. Consumes a token exactly when the rate
     * check is reached and passes; a later queue/deadline shed does
     * not refund it (the tenant spent its slot on an unservable
     * request — standard bucket semantics, and deterministic).
     */
    AdmitDecision decide(const AdmitContext &ctx);

    /** Refill every bucket (reset-replay support). */
    void reset();

    const AdmissionConfig &config() const { return config_; }

  private:
    AdmissionConfig config_;
    std::vector<TokenBucket> buckets_;
};

} // namespace ccai::serve

#endif // CCAI_SERVE_ADMISSION_HH
