/**
 * @file
 * Request arrival processes for the fleet load generator: open-loop
 * Poisson arrivals (exponential inter-arrival times drawn from a
 * per-tenant Rng stream) and trace-driven arrivals replaying an
 * explicit inter-arrival schedule. Open-loop means arrivals do not
 * wait for completions — queueing delay shows up in the SLO
 * percentiles instead of being hidden by a closed feedback loop.
 */

#ifndef CCAI_SERVE_ARRIVAL_HH
#define CCAI_SERVE_ARRIVAL_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sim/rng.hh"

namespace ccai::serve
{

/**
 * One tenant's arrival process. A non-empty trace takes precedence
 * over the Poisson rate; when the trace is exhausted the process
 * reports done (Poisson processes never finish on their own — the
 * load generator's horizon stops them).
 */
class ArrivalProcess
{
  public:
    /** Poisson arrivals at @p ratePerSec requests per second. */
    static ArrivalProcess
    poisson(double ratePerSec)
    {
        ArrivalProcess p;
        p.ratePerSec_ = ratePerSec;
        return p;
    }

    /** Replay explicit inter-arrival gaps (ticks between requests). */
    static ArrivalProcess
    trace(std::vector<Tick> gaps)
    {
        ArrivalProcess p;
        p.gaps_ = std::move(gaps);
        return p;
    }

    /** True when a finite trace has been fully replayed. */
    bool
    done() const
    {
        return !gaps_.empty() && cursor_ >= gaps_.size();
    }

    /** Rewind a trace to its first gap (reset-replay support). */
    void restart() { cursor_ = 0; }

    /**
     * Draw the gap until the next arrival. Poisson gaps come from
     * inverting the exponential CDF with this tenant's own Rng
     * stream, so tenants are statistically independent but each is
     * individually reproducible. A zero-tick gap is rounded up to
     * one tick to keep arrivals strictly ordered per tenant.
     */
    Tick
    nextGap(sim::Rng &rng)
    {
        if (!gaps_.empty()) {
            Tick gap = gaps_[cursor_ % gaps_.size()];
            ++cursor_;
            return gap > 0 ? gap : 1;
        }
        // u in (0, 1]: uniform01 returns [0, 1) and log(0) is -inf.
        double u = 1.0 - rng.uniform01();
        double seconds = -std::log(u) / ratePerSec_;
        Tick gap = secondsToTicks(seconds);
        return gap > 0 ? gap : 1;
    }

  private:
    ArrivalProcess() = default;

    double ratePerSec_ = 1.0;
    std::vector<Tick> gaps_;
    std::size_t cursor_ = 0;
};

} // namespace ccai::serve

#endif // CCAI_SERVE_ARRIVAL_HH
