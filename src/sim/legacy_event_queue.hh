/**
 * @file
 * The seed priority-queue event kernel, kept as the differential-test
 * oracle for the timer-wheel EventQueue and as the baseline side of
 * bench_serve_fleet's events/sec comparison.
 *
 * Two defects of the seed version are fixed here (the wheel kernel
 * never had them):
 *  - run()/runUntil() copied events_.top() — a full std::function
 *    copy per dispatched event — before popping. The binary heap is
 *    now managed explicitly with std::pop_heap so the hot event is
 *    moved out of the container instead.
 *  - reset() kept the old container's capacity alive forever. It now
 *    releases the backing store, and shrink()/capacityEvents() let
 *    soak tests assert no unbounded growth.
 *
 * Ordering contract (identical to EventQueue): (tick, priority,
 * sequence), ties on insertion order.
 */

#ifndef CCAI_SIM_LEGACY_EVENT_QUEUE_HH
#define CCAI_SIM_LEGACY_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "sim/event_queue.hh" // EventPriority

namespace ccai::sim
{

/**
 * Deterministic min-heap of std::function callbacks — the seed
 * kernel. O(log n) schedule/dispatch, no cancellation: cancelled
 * timers must be emulated with generation-counter no-ops, which stay
 * queued until their tick arrives (exactly what the wheel kernel's
 * deschedule() eliminates).
 */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;

    LegacyEventQueue() = default;
    LegacyEventQueue(const LegacyEventQueue &) = delete;
    LegacyEventQueue &operator=(const LegacyEventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p cb to run at absolute tick @p when. */
    void
    schedule(Tick when, Callback cb,
             EventPriority prio = EventPriority::Default)
    {
        if (when < now_)
            panic("scheduling event in the past (%llu < %llu)",
                  (unsigned long long)when, (unsigned long long)now_);
        events_.push_back(Event{when, static_cast<int>(prio),
                                nextSeq_++, std::move(cb)});
        std::push_heap(events_.begin(), events_.end(), Later{});
    }

    /** Schedule @p cb to run @p delay ticks from now. */
    void
    scheduleIn(Tick delay, Callback cb,
               EventPriority prio = EventPriority::Default)
    {
        schedule(now_ + delay, std::move(cb), prio);
    }

    /** True when no events remain. */
    bool empty() const { return events_.empty(); }

    /** Number of pending events. */
    size_t pending() const { return events_.size(); }

    /** Heap slots currently allocated (soak-growth assertions). */
    size_t capacityEvents() const { return events_.capacity(); }

    /** Trim the backing store to the live event count. */
    void shrink() { events_.shrink_to_fit(); }

    /**
     * Run events until the queue drains or @p limit events have been
     * processed.
     *
     * @return number of events processed.
     */
    std::uint64_t
    run(std::uint64_t limit = UINT64_MAX)
    {
        std::uint64_t processed = 0;
        while (!events_.empty() && processed < limit) {
            Event ev = popTop();
            ccai_assert(ev.when >= now_);
            now_ = ev.when;
            ev.cb();
            ++processed;
        }
        return processed;
    }

    /** Run events up to and including tick @p until. */
    std::uint64_t
    runUntil(Tick until)
    {
        std::uint64_t processed = 0;
        while (!events_.empty() && events_.front().when <= until) {
            Event ev = popTop();
            now_ = ev.when;
            ev.cb();
            ++processed;
        }
        if (now_ < until)
            now_ = until;
        return processed;
    }

    /** Advance time with no event processing (test helper). */
    void
    warp(Tick to)
    {
        ccai_assert(to >= now_);
        ccai_assert(events_.empty());
        now_ = to;
    }

    /** Drop all pending events, release the backing store, and reset
     * time to zero. */
    void
    reset()
    {
        std::vector<Event>().swap(events_);
        now_ = 0;
        nextSeq_ = 0;
    }

  private:
    struct Event
    {
        Tick when;
        int prio;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    /** Move the root out of the heap — no std::function copy. */
    Event
    popTop()
    {
        std::pop_heap(events_.begin(), events_.end(), Later{});
        Event ev = std::move(events_.back());
        events_.pop_back();
        return ev;
    }

    std::vector<Event> events_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
};

} // namespace ccai::sim

#endif // CCAI_SIM_LEGACY_EVENT_QUEUE_HH
