#include "rng.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.hh"

namespace ccai::sim
{

namespace
{

std::optional<std::uint64_t> &
overrideSlot()
{
    static std::optional<std::uint64_t> slot;
    return slot;
}

std::optional<std::uint64_t>
parseSeed(const char *text)
{
    if (!text || !*text)
        return std::nullopt;
    char *end = nullptr;
    // Base 0: accepts decimal and 0x-prefixed hex seeds.
    std::uint64_t value = std::strtoull(text, &end, 0);
    if (end == text || (end && *end != '\0')) {
        warn("rng: ignoring unparsable seed '%s'", text);
        return std::nullopt;
    }
    return value;
}

/**
 * CCAI_SEED parsing is strict where the --seed flag is lenient: a
 * malformed environment seed silently falling back would replay a
 * different schedule than the operator asked for, which is exactly
 * the failure reproduction the variable exists to prevent.
 */
std::optional<std::uint64_t>
parseEnvSeed(const char *text)
{
    if (!text)
        return std::nullopt; // unset: use the caller's fallback
    if (!*text)
        fatal("rng: CCAI_SEED is set but empty");
    errno = 0;
    char *end = nullptr;
    std::uint64_t value = std::strtoull(text, &end, 0);
    if (errno == ERANGE)
        fatal("rng: CCAI_SEED '%s' overflows 64 bits", text);
    if (end == text)
        fatal("rng: CCAI_SEED '%s' is not a number", text);
    if (*end != '\0')
        fatal("rng: CCAI_SEED '%s' has trailing garbage", text);
    return value;
}

} // namespace

void
setSeedOverride(std::optional<std::uint64_t> seed)
{
    overrideSlot() = seed;
}

std::optional<std::uint64_t>
seedOverride()
{
    if (overrideSlot().has_value())
        return overrideSlot();
    return parseEnvSeed(std::getenv("CCAI_SEED"));
}

std::uint64_t
resolveSeed(std::uint64_t fallback)
{
    std::optional<std::uint64_t> override = seedOverride();
    std::uint64_t effective = override.value_or(fallback);

    // One log line per distinct effective seed: enough to reproduce
    // a CI fuzz failure without spamming per-Platform construction.
    static std::uint64_t last_logged = ~std::uint64_t(0);
    static bool logged_any = false;
    if (!logged_any || last_logged != effective) {
        inform("rng: seed=%llu (0x%llx, %s)",
               (unsigned long long)effective,
               (unsigned long long)effective,
               override ? "override" : "default");
        last_logged = effective;
        logged_any = true;
    }
    return effective;
}

bool
applySeedFlag(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--seed=", 7) == 0) {
            if (auto v = parseSeed(arg + 7)) {
                setSeedOverride(v);
                return true;
            }
            return false;
        }
        if (std::strcmp(arg, "--seed") == 0 && i + 1 < argc) {
            if (auto v = parseSeed(argv[i + 1])) {
                setSeedOverride(v);
                return true;
            }
            return false;
        }
    }
    return false;
}

std::uint64_t
seedHash(const std::string &salt)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : salt) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace ccai::sim
