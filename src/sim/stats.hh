/**
 * @file
 * Lightweight statistics framework: scalar counters, histograms, and a
 * registry that can dump everything at end of simulation.
 */

#ifndef CCAI_SIM_STATS_HH
#define CCAI_SIM_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace ccai::sim
{

/** Monotonic scalar counter. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t by = 1) { value_ += by; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean/min/max/stddev of a stream of samples. */
class Distribution
{
  public:
    void
    sample(double v)
    {
        ++n_;
        sum_ += v;
        sumSq_ += v * v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    std::uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const { return n_ ? sum_ / n_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    double
    stddev() const
    {
        if (n_ < 2)
            return 0.0;
        double m = mean();
        double var = (sumSq_ - n_ * m * m) / (n_ - 1);
        return var > 0 ? std::sqrt(var) : 0.0;
    }

    void
    reset()
    {
        n_ = 0;
        sum_ = sumSq_ = 0.0;
        min_ = 1e300;
        max_ = -1e300;
    }

  private:
    std::uint64_t n_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = 1e300;
    double max_ = -1e300;
};

/**
 * Named statistics group. Components own one and register their
 * counters under dotted names for uniform reporting.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string prefix) : prefix_(std::move(prefix)) {}

    Counter &
    counter(const std::string &name)
    {
        return counters_[name];
    }

    Distribution &
    distribution(const std::string &name)
    {
        return dists_[name];
    }

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }

    const std::map<std::string, Distribution> &distributions() const
    {
        return dists_;
    }

    const std::string &prefix() const { return prefix_; }

    void
    reset()
    {
        for (auto &kv : counters_)
            kv.second.reset();
        for (auto &kv : dists_)
            kv.second.reset();
    }

    /** Render all stats as "prefix.name value" lines. */
    std::string dump() const;

  private:
    std::string prefix_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Distribution> dists_;
};

} // namespace ccai::sim

#endif // CCAI_SIM_STATS_HH
