/**
 * @file
 * Statistics façade for simulation components. The value types and
 * group storage live in the observability plane (src/obs); this
 * header re-exports them under the historical sim:: names so
 * existing components, tests and out-of-tree code keep compiling.
 *
 * New code should resolve typed handles (obs::CounterHandle et al.)
 * once at construction instead of calling the string-keyed
 * counter(name) shim on hot paths.
 */

#ifndef CCAI_SIM_STATS_HH
#define CCAI_SIM_STATS_HH

#include "common/logging.hh"
#include "obs/metric_group.hh"
#include "obs/stats.hh"

namespace ccai::sim
{

using Counter = obs::Counter;
using Gauge = obs::Gauge;
using Distribution = obs::Distribution;
using Histogram = obs::Histogram;

/**
 * Named statistics group (thin façade over obs::MetricGroup). The
 * registry-taking constructor enrolls the group in a System's
 * MetricsRegistry; the prefix-only form keeps standalone groups
 * (unit tests, scratch tooling) working unchanged.
 */
using StatGroup = obs::MetricGroup;

} // namespace ccai::sim

#endif // CCAI_SIM_STATS_HH
