/**
 * @file
 * Deterministic pseudo-random source for the simulation. All
 * randomness in the system (workload sampling, nonces in tests) flows
 * through an explicitly-seeded Rng so runs are reproducible.
 */

#ifndef CCAI_SIM_RNG_HH
#define CCAI_SIM_RNG_HH

#include <cstdint>
#include <optional>
#include <random>
#include <string>

#include "common/types.hh"

namespace ccai::sim
{

/**
 * Global seed override for reproducible fuzz/soak runs.
 *
 * Priority: setSeedOverride() (the --seed flag) > the CCAI_SEED
 * environment variable > the caller's fallback. resolveSeed() logs
 * the effective seed the first time each distinct value is resolved,
 * so a CI failure is reproducible from the log line alone.
 */

/** Programmatic override (what --seed parses into). */
void setSeedOverride(std::optional<std::uint64_t> seed);

/** Active override: the programmatic one, else CCAI_SEED, else none. */
std::optional<std::uint64_t> seedOverride();

/** The seed a component should actually use, with startup logging. */
std::uint64_t resolveSeed(std::uint64_t fallback);

/**
 * Scan argv for "--seed N" / "--seed=N" and install the override.
 * @return true when a seed flag was consumed.
 */
bool applySeedFlag(int argc, char **argv);

/** FNV-1a hash for deriving per-component seeds from one root seed. */
std::uint64_t seedHash(const std::string &salt);

/** Seedable wrapper around a 64-bit Mersenne engine. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x53C41u) : engine_(seed) {}

    /** Uniform integer in [lo, hi]. */
    std::uint64_t
    uniform(std::uint64_t lo, std::uint64_t hi)
    {
        std::uniform_int_distribution<std::uint64_t> d(lo, hi);
        return d(engine_);
    }

    /** Uniform double in [0, 1). */
    double
    uniform01()
    {
        std::uniform_real_distribution<double> d(0.0, 1.0);
        return d(engine_);
    }

    /** Fill a buffer with pseudo-random bytes. */
    void
    fill(Bytes &out)
    {
        for (auto &b : out)
            b = static_cast<std::uint8_t>(uniform(0, 255));
    }

    /** Produce @p n pseudo-random bytes. */
    Bytes
    bytes(size_t n)
    {
        Bytes out(n);
        fill(out);
        return out;
    }

    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace ccai::sim

#endif // CCAI_SIM_RNG_HH
