/**
 * @file
 * Generic schema-v4 metrics snapshot: header, event-core rollup,
 * metric groups, pluggable tenants/extra sections.
 */

#include "sim/metrics_snapshot.hh"

#include <sstream>

namespace ccai::sim
{

void
writeMetricsSnapshot(obs::JsonEmitter &json, System &sys,
                     const MetricsSnapshotInfo &info,
                     const SnapshotSectionWriter &tenantsWriter,
                     const SnapshotSectionWriter &extraSections)
{
    json.beginObject();
    json.field("schema_version", 4);
    json.field("source", info.source);
    json.field("seed", info.seed);
    json.field("sim_now_ticks", sys.now());
    json.field("secure", info.secure);

    // Event-core rollup from the timer-wheel kernel. Deterministic:
    // schedule/dispatch/cancel counts depend only on the seeded sim,
    // never on wall clock, so the section lives outside "wall".
    {
        const EventQueue::Stats eq = sys.eventq().snapshotStats();
        json.key("event_core");
        json.beginObject();
        json.field("scheduled", eq.scheduled);
        json.field("dispatched", eq.dispatched);
        json.field("cancelled", eq.cancelled);
        json.field("cascades", eq.cascades);
        json.field("pending", eq.pending);
        json.field("max_pending", eq.maxPending);
        json.field("overflow_high_watermark", eq.overflowHwm);
        json.field("one_shot_capacity", eq.oneShotCapacity);
        json.field("one_shot_live", eq.oneShotLive);
        json.key("level_high_watermarks");
        json.beginArray();
        for (std::uint64_t hwm : eq.levelHwm)
            json.value(hwm);
        json.endArray();
        json.endObject();
    }

    json.key("groups");
    sys.metrics().writeJson(json, /*withBuckets=*/false);

    json.key("tenants");
    json.beginObject();
    if (tenantsWriter)
        tenantsWriter(json);
    json.endObject();

    if (extraSections)
        extraSections(json);

    json.endObject();
}

std::string
exportMetricsSnapshot(System &sys, const MetricsSnapshotInfo &info,
                      const SnapshotSectionWriter &tenantsWriter,
                      const SnapshotSectionWriter &extraSections)
{
    std::ostringstream os;
    obs::JsonEmitter json(os);
    writeMetricsSnapshot(json, sys, info, tenantsWriter,
                         extraSections);
    os << "\n";
    return os.str();
}

} // namespace ccai::sim
