#include "stats.hh"

#include <sstream>

namespace ccai::sim
{

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &kv : counters_)
        os << prefix_ << '.' << kv.first << ' ' << kv.second.value()
           << '\n';
    for (const auto &kv : dists_) {
        const Distribution &d = kv.second;
        os << prefix_ << '.' << kv.first << ".count " << d.count() << '\n';
        os << prefix_ << '.' << kv.first << ".mean " << d.mean() << '\n';
        os << prefix_ << '.' << kv.first << ".min " << d.min() << '\n';
        os << prefix_ << '.' << kv.first << ".max " << d.max() << '\n';
    }
    return os.str();
}

} // namespace ccai::sim
