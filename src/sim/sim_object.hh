/**
 * @file
 * Base class for simulated components and the System container that
 * owns the event queue they share.
 */

#ifndef CCAI_SIM_SIM_OBJECT_HH
#define CCAI_SIM_SIM_OBJECT_HH

#include <memory>
#include <string>
#include <vector>

#include "obs/trace.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace ccai::sim
{

class System;

/**
 * A named component attached to a System. SimObjects share the
 * system's event queue and are enumerated for reset/statistics.
 */
class SimObject
{
  public:
    SimObject(System &sys, std::string name);
    virtual ~SimObject() = default;

    const std::string &name() const { return name_; }
    System &system() { return sys_; }

    /** Current simulated time (forwarded from the system queue). */
    Tick curTick() const;

    /** Restore power-on state. Called by System::resetAll(). */
    virtual void reset() {}

    /** Statistics group, when the object keeps one. */
    virtual sim::StatGroup *statGroup() { return nullptr; }

  protected:
    EventQueue &eventq();

  private:
    System &sys_;
    std::string name_;
};

/**
 * Top-level simulation container: owns the event queue and tracks all
 * SimObjects registered against it.
 */
class System
{
  public:
    System() = default;
    System(const System &) = delete;
    System &operator=(const System &) = delete;

    EventQueue &eventq() { return eventq_; }
    Tick now() const { return eventq_.now(); }

    /** Observability plane: directory of component metric groups. */
    obs::MetricsRegistry &metrics() { return metrics_; }
    const obs::MetricsRegistry &metrics() const { return metrics_; }

    /** Span tracer (off by default; sim-time stamped). */
    obs::Tracer &tracer() { return tracer_; }
    const obs::Tracer &tracer() const { return tracer_; }

    /** Run the event loop to completion. */
    std::uint64_t run(std::uint64_t limit = UINT64_MAX)
    {
        return eventq_.run(limit);
    }

    /** Reset every registered object and the queue. */
    void
    resetAll()
    {
        eventq_.reset();
        for (SimObject *obj : objects_)
            obj->reset();
    }

    const std::vector<SimObject *> &objects() const { return objects_; }

    /**
     * Sum a named counter across every registered object's stat
     * group. Used by fault/soak tests to aggregate e.g.
     * "faults_injected" over all links without enumerating them.
     */
    std::uint64_t
    sumCounter(const std::string &name)
    {
        std::uint64_t total = 0;
        for (SimObject *obj : objects_) {
            if (sim::StatGroup *stats = obj->statGroup()) {
                auto it = stats->counters().find(name);
                if (it != stats->counters().end())
                    total += it->second.value();
            }
        }
        return total;
    }

    /** Render every registered object's statistics (gem5-style). */
    std::string
    dumpStats()
    {
        std::string out;
        for (SimObject *obj : objects_) {
            if (sim::StatGroup *stats = obj->statGroup())
                out += stats->dump();
        }
        return out;
    }

  private:
    friend class SimObject;
    void registerObject(SimObject *obj) { objects_.push_back(obj); }

    EventQueue eventq_;
    std::vector<SimObject *> objects_;
    obs::MetricsRegistry metrics_;
    obs::Tracer tracer_;
};

inline
SimObject::SimObject(System &sys, std::string name)
    : sys_(sys), name_(std::move(name))
{
    sys_.registerObject(this);
}

inline Tick
SimObject::curTick() const
{
    return sys_.now();
}

inline EventQueue &
SimObject::eventq()
{
    return sys_.eventq();
}

} // namespace ccai::sim

#endif // CCAI_SIM_SIM_OBJECT_HH
