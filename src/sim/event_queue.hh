/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue orders callbacks by (tick, priority, sequence).
 * Components schedule std::function callbacks; the kernel runs them in
 * order and advances simulated time. Simulated time is entirely
 * decoupled from wall-clock time: the LLM benchmarks report results in
 * simulated seconds.
 */

#ifndef CCAI_SIM_EVENT_QUEUE_HH
#define CCAI_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace ccai::sim
{

/** Ordering hint for events scheduled at the same tick. */
enum class EventPriority : int
{
    High = 0,
    Default = 50,
    Low = 100,
};

/**
 * Global event queue with deterministic ordering.
 *
 * Determinism: ties on (tick, priority) break on insertion sequence
 * number, so two runs with identical inputs replay identically.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p cb to run at absolute tick @p when. */
    void
    schedule(Tick when, Callback cb,
             EventPriority prio = EventPriority::Default)
    {
        if (when < now_)
            panic("scheduling event in the past (%llu < %llu)",
                  (unsigned long long)when, (unsigned long long)now_);
        events_.push(Event{when, static_cast<int>(prio), nextSeq_++,
                           std::move(cb)});
    }

    /** Schedule @p cb to run @p delay ticks from now. */
    void
    scheduleIn(Tick delay, Callback cb,
               EventPriority prio = EventPriority::Default)
    {
        schedule(now_ + delay, std::move(cb), prio);
    }

    /** True when no events remain. */
    bool empty() const { return events_.empty(); }

    /** Number of pending events. */
    size_t pending() const { return events_.size(); }

    /**
     * Run events until the queue drains or @p limit events have been
     * processed.
     *
     * @return number of events processed.
     */
    std::uint64_t
    run(std::uint64_t limit = UINT64_MAX)
    {
        std::uint64_t processed = 0;
        while (!events_.empty() && processed < limit) {
            Event ev = events_.top();
            events_.pop();
            ccai_assert(ev.when >= now_);
            now_ = ev.when;
            ev.cb();
            ++processed;
        }
        return processed;
    }

    /** Run events up to and including tick @p until. */
    std::uint64_t
    runUntil(Tick until)
    {
        std::uint64_t processed = 0;
        while (!events_.empty() && events_.top().when <= until) {
            Event ev = events_.top();
            events_.pop();
            now_ = ev.when;
            ev.cb();
            ++processed;
        }
        if (now_ < until)
            now_ = until;
        return processed;
    }

    /** Advance time with no event processing (test helper). */
    void
    warp(Tick to)
    {
        ccai_assert(to >= now_);
        ccai_assert(events_.empty());
        now_ = to;
    }

    /** Drop all pending events and reset time to zero. */
    void
    reset()
    {
        events_ = {};
        now_ = 0;
        nextSeq_ = 0;
    }

  private:
    struct Event
    {
        Tick when;
        int prio;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
};

} // namespace ccai::sim

#endif // CCAI_SIM_EVENT_QUEUE_HH
