/**
 * @file
 * Discrete-event simulation kernel: hierarchical timer wheel.
 *
 * The queue orders callbacks by (tick, priority, sequence) — the exact
 * contract of the original priority-queue kernel (kept as
 * LegacyEventQueue, the differential-test oracle) — but stores pending
 * events in a gem5/Linux-style hierarchical timer wheel so that
 * schedule, deschedule and reschedule are O(1) and dispatch is
 * amortized O(1) per event:
 *
 *   level 0   4096 buckets x 1 tick        (low 12 bits of the tick)
 *   level 1     64 buckets x 4096 ticks    (bits 12..17)
 *   level k     64 buckets x 2^(12+6(k-1)) (bits 12+6(k-1) ..)
 *   level 7     64 buckets x 2^48 ticks    (bits 48..53)
 *   overflow  sorted tick -> bucket map beyond 2^54 ticks (~5 sim-h)
 *
 * An event lives at the level of the most significant digit in which
 * its tick differs from the queue cursor (now + 1). Advancing time
 * cascades the then-current bucket of each level downward, so every
 * event is relinked at most once per level before it reaches the
 * level-0 bucket of its exact tick. Same-tick events are batch-sorted
 * by (priority, sequence) into the current-tick dispatch list, which
 * preserves the deterministic replay contract bit-for-bit.
 *
 * Events are intrusive (Event base class with bucket links), so
 * components own their recurring timers and re-arm them without any
 * allocation, and cancelled timers leave the queue immediately
 * instead of surviving as generation-counter no-ops. The closure API
 * (schedule(tick, std::function)) is backed by a slab freelist of
 * one-shot wrapper events, recycled after dispatch.
 *
 * Simulated time is entirely decoupled from wall-clock time: the LLM
 * benchmarks report results in simulated seconds.
 */

#ifndef CCAI_SIM_EVENT_QUEUE_HH
#define CCAI_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace ccai::sim
{

class EventQueue;

/** Ordering hint for events scheduled at the same tick. */
enum class EventPriority : int
{
    High = 0,
    Default = 50,
    Low = 100,
};

/**
 * Intrusive schedulable entity. Components derive from Event (or
 * embed an EventFunctionWrapper) for recurring timers: the object is
 * relinked in place on schedule/deschedule/reschedule, so re-arming
 * an ARQ or watchdog timer allocates nothing.
 *
 * An Event may be scheduled on at most one queue at a time. If it is
 * destroyed while scheduled it deschedules itself, so component
 * teardown with armed timers is safe.
 */
class Event
{
  public:
    explicit Event(EventPriority prio = EventPriority::Default)
        : prio_(static_cast<std::int16_t>(prio))
    {}
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked when simulated time reaches when(). */
    virtual void process() = 0;

    /** Debug label. */
    virtual const char *name() const { return "event"; }

    /** Tick this event is scheduled for (valid while scheduled). */
    Tick when() const { return when_; }

    bool scheduled() const { return where_ != kUnscheduled; }

    int priority() const { return prio_; }

    /** Only legal while unscheduled. */
    void
    setPriority(EventPriority prio)
    {
        ccai_assert(!scheduled());
        prio_ = static_cast<std::int16_t>(prio);
    }

  private:
    friend class EventQueue;

    static constexpr std::int32_t kUnscheduled = -1;
    static constexpr std::int32_t kCurList = -2;
    static constexpr std::int32_t kOverflow = -3;

    static constexpr std::uint8_t kManaged = 1; ///< queue-owned slab node

    Tick when_ = 0;
    std::uint64_t seq_ = 0;
    Event *prev_ = nullptr;
    Event *next_ = nullptr;
    EventQueue *queue_ = nullptr;
    /** kUnscheduled / kCurList / kOverflow or flat bucket index. */
    std::int32_t where_ = kUnscheduled;
    std::int16_t prio_;
    std::uint8_t flags_ = 0;
};

/**
 * Event carrying a callback set once at construction — the gem5
 * EventFunctionWrapper idiom for component-owned timers: the closure
 * is allocated once per component, not once per arm.
 */
class EventFunctionWrapper : public Event
{
  public:
    EventFunctionWrapper() = default;
    explicit EventFunctionWrapper(std::function<void()> fn,
                                  const char *name = "wrapped",
                                  EventPriority prio =
                                      EventPriority::Default)
        : Event(prio), fn_(std::move(fn)), name_(name)
    {}

    void
    setCallback(std::function<void()> fn, const char *name = "wrapped")
    {
        ccai_assert(!scheduled());
        fn_ = std::move(fn);
        name_ = name;
    }

    void process() override { fn_(); }
    const char *name() const override { return name_; }

  private:
    std::function<void()> fn_;
    const char *name_ = "wrapped";
};

/**
 * Global event queue with deterministic ordering.
 *
 * Determinism: ties on (tick, priority) break on insertion sequence
 * number, so two runs with identical inputs replay identically —
 * including across wheel level boundaries and cascades, which never
 * reorder same-tick events.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Event-core counters for the observability plane. */
    struct Stats
    {
        std::uint64_t scheduled = 0;  ///< schedule()/reschedule() calls
        std::uint64_t dispatched = 0; ///< events whose process() ran
        std::uint64_t cancelled = 0;  ///< deschedule()d before firing
        std::uint64_t cascades = 0;   ///< event relinks between levels
        std::uint64_t pending = 0;
        std::uint64_t maxPending = 0; ///< high-watermark of pending
        /** Per-level occupancy high-watermarks (level 0..7). */
        std::uint64_t levelHwm[8] = {};
        std::uint64_t overflowHwm = 0;
        /** Slab-allocated one-shot wrapper nodes (capacity). */
        std::uint64_t oneShotCapacity = 0;
        std::uint64_t oneShotLive = 0;
    };

    EventQueue();
    ~EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    // ---- intrusive API (owned events) ----

    /** Schedule @p ev to fire at absolute tick @p when. */
    void schedule(Event *ev, Tick when);

    /** Schedule @p ev to fire @p delay ticks from now. */
    void scheduleIn(Event *ev, Tick delay)
    {
        schedule(ev, now_ + delay);
    }

    /** Remove a pending event in O(1); it simply never fires. */
    void deschedule(Event *ev);

    /** Move a (possibly pending) event to @p when; takes a fresh
     * sequence number, exactly as deschedule + schedule would. */
    void
    reschedule(Event *ev, Tick when)
    {
        if (ev->scheduled())
            deschedule(ev);
        schedule(ev, when);
    }

    void
    rescheduleIn(Event *ev, Tick delay)
    {
        reschedule(ev, now_ + delay);
    }

    // ---- closure API (slab-backed one-shot events) ----

    /** Schedule @p cb to run at absolute tick @p when. */
    void schedule(Tick when, Callback cb,
                  EventPriority prio = EventPriority::Default);

    /** Schedule @p cb to run @p delay ticks from now. */
    void
    scheduleIn(Tick delay, Callback cb,
               EventPriority prio = EventPriority::Default)
    {
        schedule(now_ + delay, std::move(cb), prio);
    }

    // ---- execution ----

    /** True when no events remain. */
    bool empty() const { return pending_ == 0; }

    /** Number of pending events. */
    size_t pending() const { return pending_; }

    /**
     * Run events until the queue drains or @p limit events have been
     * processed.
     *
     * @return number of events processed.
     */
    std::uint64_t run(std::uint64_t limit = UINT64_MAX);

    /** Run events up to and including tick @p until. */
    std::uint64_t runUntil(Tick until);

    /** Tick of the earliest pending event (pending() must be > 0).
     * May relink events between levels; never changes dispatch
     * order. */
    Tick nextEventTick();

    /** Advance time with no event processing (test helper). */
    void
    warp(Tick to)
    {
        ccai_assert(to >= now_);
        ccai_assert(empty());
        now_ = to;
    }

    /** Drop all pending events, release event-node slabs, and reset
     * time, sequence numbers and statistics to zero. */
    void reset();

    /**
     * Release cached one-shot slab memory when no one-shot events are
     * live. Soak tests call this and then assert oneShotCapacity
     * stays bounded across iterations.
     */
    void shrink();

    // ---- statistics ----

    Stats snapshotStats() const;

    std::uint64_t statScheduled() const { return stats_.scheduled; }
    std::uint64_t statDispatched() const { return stats_.dispatched; }
    std::uint64_t statCancelled() const { return stats_.cancelled; }
    std::uint64_t statCascades() const { return stats_.cascades; }
    std::uint64_t statMaxPending() const { return stats_.maxPending; }
    std::uint64_t oneShotCapacity() const
    {
        return slabs_.size() * kSlabSize;
    }
    std::uint64_t oneShotLive() const { return liveOneShots_; }

  private:
    // ---- wheel geometry ----
    static constexpr int kL0Bits = 12;
    static constexpr std::uint32_t kL0Buckets = 1u << kL0Bits;
    static constexpr Tick kMask0 = kL0Buckets - 1;
    static constexpr int kLevelBits = 6;
    static constexpr int kUpperLevels = 7;
    static constexpr int kLevels = kUpperLevels + 1;
    /** Bits covered by the whole wheel; beyond lives in overflow_. */
    static constexpr int kTopShift =
        kL0Bits + kUpperLevels * kLevelBits;
    static constexpr std::uint32_t kNumFlat =
        kL0Buckets + kUpperLevels * 64;
    static constexpr std::uint32_t kSlabSize = 256;

    static constexpr int
    shiftFor(int level)
    {
        return kL0Bits + (level - 1) * kLevelBits;
    }

    static std::uint32_t
    digitOf(Tick t, int level)
    {
        return static_cast<std::uint32_t>(t >> shiftFor(level)) & 63u;
    }

    class OneShotEvent;

    // ---- internal linkage ----
    void insertScheduled(Event *ev);
    void insertCurSorted(Event *ev);
    void removeLinked(Event *ev);
    void cascadeBucket(int level, std::uint32_t idx);
    bool findNext(Tick *out);
    void serviceTick(Tick t);
    void dispatchOne();

    OneShotEvent *allocOneShot();
    void releaseOneShot(OneShotEvent *ev);

    bool l0FindAtOrAfter(std::uint32_t from, std::uint32_t *out) const;
    void l0Set(std::uint32_t idx);
    void l0ClearIfEmpty(std::uint32_t idx);

    // ---- state ----
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t pending_ = 0;

    /** Flat bucket heads: level 0 first, then 7 x 64 upper buckets. */
    std::vector<Event *> buckets_;
    std::uint64_t l0Words_[kL0Buckets / 64] = {};
    std::uint64_t l0Summary_ = 0;
    std::uint64_t levelWord_[kUpperLevels] = {};
    std::uint64_t levelCount_[kLevels] = {};

    /** Current-tick dispatch list, sorted by (priority, sequence). */
    Event *curHead_ = nullptr;
    Event *curTail_ = nullptr;
    std::uint64_t curCount_ = 0;

    /** Far-future events: tick -> intrusive list head. */
    std::map<Tick, Event *> overflow_;
    std::uint64_t overflowCount_ = 0;

    /** When set, same-tick inserts collect here for one batch sort. */
    bool collecting_ = false;
    std::vector<Event *> scratch_;

    // One-shot wrapper slabs + freelist (chained through next_).
    std::vector<std::unique_ptr<OneShotEvent[]>> slabs_;
    Event *freeHead_ = nullptr;
    std::uint64_t liveOneShots_ = 0;

    Stats stats_;
};

} // namespace ccai::sim

#endif // CCAI_SIM_EVENT_QUEUE_HH
