/**
 * @file
 * System-generic metrics snapshot writer (metrics schema_version 4).
 *
 * Historically Platform::exportMetricsJson() was the only producer of
 * the machine-readable metrics snapshot; the serving control plane
 * (serve::LoadGenerator fleets) needs the identical format for its
 * replay-determinism gates, so the generic parts — the header, the
 * event-core rollup and the per-group metric dump — live here,
 * keyed off any sim::System. Schema v4 adds the required "source"
 * field identifying the exporter ("platform", "serve_fleet", ...)
 * so consumers can tell the snapshots apart.
 *
 * Producer-specific sections plug in through writer callbacks: the
 * Platform contributes its per-tenant traffic rollups and the
 * wall-clock worker-pool/buffer-pool section, a serve fleet
 * contributes nothing extra. Same sim state in, byte-identical JSON
 * out — the property the serve chaos determinism suite pins.
 */

#ifndef CCAI_SIM_METRICS_SNAPSHOT_HH
#define CCAI_SIM_METRICS_SNAPSHOT_HH

#include <cstdint>
#include <functional>
#include <string>

#include "obs/json.hh"
#include "sim/sim_object.hh"

namespace ccai::sim
{

/** Header fields of one metrics snapshot. */
struct MetricsSnapshotInfo
{
    /** Exporter identity ("platform", "serve_fleet", ...). */
    const char *source = "platform";
    std::uint64_t seed = 0;
    bool secure = false;
};

/**
 * Section plug-in. The tenants writer emits the key/value pairs
 * INSIDE the "tenants" object (an empty object is emitted when the
 * writer is null); the extra writer emits whole keyed sections after
 * it (e.g. Platform's "wall" section) and may be null.
 */
using SnapshotSectionWriter = std::function<void(obs::JsonEmitter &)>;

/**
 * Write one schema-v4 snapshot of @p sys to @p json: header fields
 * from @p info, the deterministic event-core rollup, every
 * registered metric group, the "tenants" section and any extra
 * producer sections.
 */
void writeMetricsSnapshot(
    obs::JsonEmitter &json, System &sys,
    const MetricsSnapshotInfo &info,
    const SnapshotSectionWriter &tenantsWriter = {},
    const SnapshotSectionWriter &extraSections = {});

/** Convenience: snapshot as a newline-terminated string. */
std::string exportMetricsSnapshot(
    System &sys, const MetricsSnapshotInfo &info,
    const SnapshotSectionWriter &tenantsWriter = {},
    const SnapshotSectionWriter &extraSections = {});

} // namespace ccai::sim

#endif // CCAI_SIM_METRICS_SNAPSHOT_HH
