/**
 * @file
 * Hierarchical timer wheel implementation. See event_queue.hh for the
 * geometry and the determinism contract.
 */

#include "sim/event_queue.hh"

#include <algorithm>

namespace ccai::sim
{

/** Slab-recycled wrapper backing the closure schedule() API. */
class EventQueue::OneShotEvent final : public Event
{
  public:
    OneShotEvent() { flags_ = kManaged; }

    void process() override { fn_(); }
    const char *name() const override { return "one-shot"; }

    std::function<void()> fn_;
};

Event::~Event()
{
    if (scheduled() && queue_)
        queue_->deschedule(this);
}

EventQueue::EventQueue() : buckets_(kNumFlat, nullptr) {}

EventQueue::~EventQueue()
{
    // Unhook every still-scheduled owned event so its destructor does
    // not chase a dead queue. Slab nodes are freed with the slabs.
    for (Event *ev = curHead_; ev != nullptr; ev = ev->next_) {
        ev->where_ = Event::kUnscheduled;
        ev->queue_ = nullptr;
    }
    for (Event *head : buckets_) {
        for (Event *ev = head; ev != nullptr; ev = ev->next_) {
            ev->where_ = Event::kUnscheduled;
            ev->queue_ = nullptr;
        }
    }
    for (auto &[tick, head] : overflow_) {
        for (Event *ev = head; ev != nullptr; ev = ev->next_) {
            ev->where_ = Event::kUnscheduled;
            ev->queue_ = nullptr;
        }
    }
}

// ---- level-0 occupancy bitmap (4096 bits, one summary word) ----

void
EventQueue::l0Set(std::uint32_t idx)
{
    l0Words_[idx >> 6] |= 1ull << (idx & 63);
    l0Summary_ |= 1ull << (idx >> 6);
}

void
EventQueue::l0ClearIfEmpty(std::uint32_t idx)
{
    if (buckets_[idx] != nullptr)
        return;
    l0Words_[idx >> 6] &= ~(1ull << (idx & 63));
    if (l0Words_[idx >> 6] == 0)
        l0Summary_ &= ~(1ull << (idx >> 6));
}

bool
EventQueue::l0FindAtOrAfter(std::uint32_t from,
                            std::uint32_t *out) const
{
    std::uint32_t word = from >> 6;
    std::uint64_t w = l0Words_[word] & (~0ull << (from & 63));
    if (w) {
        *out = word * 64 + __builtin_ctzll(w);
        return true;
    }
    if (word == 63)
        return false;
    std::uint64_t s = l0Summary_ & (~0ull << (word + 1));
    if (!s)
        return false;
    word = __builtin_ctzll(s);
    *out = word * 64 + __builtin_ctzll(l0Words_[word]);
    return true;
}

// ---- insertion ----

void
EventQueue::insertCurSorted(Event *ev)
{
    ev->where_ = Event::kCurList;
    ++curCount_;
    Event *pos = curTail_;
    while (pos != nullptr &&
           (pos->prio_ > ev->prio_ ||
            (pos->prio_ == ev->prio_ && pos->seq_ > ev->seq_)))
        pos = pos->prev_;
    if (pos == nullptr) {
        ev->prev_ = nullptr;
        ev->next_ = curHead_;
        if (curHead_)
            curHead_->prev_ = ev;
        else
            curTail_ = ev;
        curHead_ = ev;
    } else {
        ev->prev_ = pos;
        ev->next_ = pos->next_;
        if (pos->next_)
            pos->next_->prev_ = ev;
        else
            curTail_ = ev;
        pos->next_ = ev;
    }
}

void
EventQueue::insertScheduled(Event *ev)
{
    Tick when = ev->when_;
    if (when == now_) {
        // Current-tick event: goes straight to the dispatch list (or
        // the batch-sort scratch while a tick is being serviced).
        if (collecting_) {
            ev->where_ = Event::kCurList;
            scratch_.push_back(ev);
            ++curCount_;
        } else {
            insertCurSorted(ev);
        }
        return;
    }

    const Tick cursor = now_ + 1;
    const Tick diff = when ^ cursor;
    if (diff >> kTopShift) {
        // Beyond the wheel span: sorted overflow buckets.
        auto [it, fresh] = overflow_.try_emplace(when, nullptr);
        ev->prev_ = nullptr;
        ev->next_ = it->second;
        if (it->second)
            it->second->prev_ = ev;
        it->second = ev;
        ev->where_ = Event::kOverflow;
        ++overflowCount_;
        if (overflowCount_ > stats_.overflowHwm)
            stats_.overflowHwm = overflowCount_;
        return;
    }

    // Level of the most significant digit where when differs from
    // the cursor; diff == 0 (when == now_ + 1) lands at level 0.
    const int msb = 63 - __builtin_clzll(diff | 1);
    std::uint32_t flat;
    int level;
    if (msb < kL0Bits) {
        level = 0;
        flat = static_cast<std::uint32_t>(when & kMask0);
        l0Set(flat);
    } else {
        level = (msb - kL0Bits) / kLevelBits + 1;
        const std::uint32_t idx = digitOf(when, level);
        flat = kL0Buckets + (level - 1) * 64 + idx;
        levelWord_[level - 1] |= 1ull << idx;
    }
    ev->prev_ = nullptr;
    ev->next_ = buckets_[flat];
    if (buckets_[flat])
        buckets_[flat]->prev_ = ev;
    buckets_[flat] = ev;
    ev->where_ = static_cast<std::int32_t>(flat);
    ++levelCount_[level];
    if (levelCount_[level] > stats_.levelHwm[level])
        stats_.levelHwm[level] = levelCount_[level];
}

void
EventQueue::removeLinked(Event *ev)
{
    if (ev->where_ == Event::kCurList) {
        if (ev->prev_)
            ev->prev_->next_ = ev->next_;
        else
            curHead_ = ev->next_;
        if (ev->next_)
            ev->next_->prev_ = ev->prev_;
        else
            curTail_ = ev->prev_;
        --curCount_;
    } else if (ev->where_ == Event::kOverflow) {
        if (ev->prev_) {
            ev->prev_->next_ = ev->next_;
            if (ev->next_)
                ev->next_->prev_ = ev->prev_;
        } else {
            auto it = overflow_.find(ev->when_);
            ccai_assert(it != overflow_.end() && it->second == ev);
            it->second = ev->next_;
            if (ev->next_)
                ev->next_->prev_ = nullptr;
            else
                overflow_.erase(it);
        }
        --overflowCount_;
    } else {
        const auto flat = static_cast<std::uint32_t>(ev->where_);
        if (ev->prev_)
            ev->prev_->next_ = ev->next_;
        else
            buckets_[flat] = ev->next_;
        if (ev->next_)
            ev->next_->prev_ = ev->prev_;
        if (flat < kL0Buckets) {
            --levelCount_[0];
            l0ClearIfEmpty(flat);
        } else {
            const int level = (flat - kL0Buckets) / 64 + 1;
            --levelCount_[level];
            if (buckets_[flat] == nullptr)
                levelWord_[level - 1] &=
                    ~(1ull << ((flat - kL0Buckets) % 64));
        }
    }
    ev->prev_ = nullptr;
    ev->next_ = nullptr;
    ev->where_ = Event::kUnscheduled;
}

void
EventQueue::cascadeBucket(int level, std::uint32_t idx)
{
    const std::uint32_t flat = kL0Buckets + (level - 1) * 64 + idx;
    Event *ev = buckets_[flat];
    if (ev == nullptr)
        return;
    buckets_[flat] = nullptr;
    levelWord_[level - 1] &= ~(1ull << idx);
    while (ev != nullptr) {
        Event *next = ev->next_;
        --levelCount_[level];
        ++stats_.cascades;
        insertScheduled(ev);
        ev = next;
    }
}

// ---- scheduling API ----

void
EventQueue::schedule(Event *ev, Tick when)
{
    if (ev->scheduled())
        panic("scheduling an already-scheduled event (%s)",
              ev->name());
    if (when < now_)
        panic("scheduling event in the past (%llu < %llu)",
              (unsigned long long)when, (unsigned long long)now_);
    ev->when_ = when;
    ev->seq_ = nextSeq_++;
    ev->queue_ = this;
    ++stats_.scheduled;
    ++pending_;
    if (pending_ > stats_.maxPending)
        stats_.maxPending = pending_;
    insertScheduled(ev);
}

void
EventQueue::deschedule(Event *ev)
{
    ccai_assert(ev->scheduled());
    ccai_assert(ev->queue_ == this);
    removeLinked(ev);
    --pending_;
    ++stats_.cancelled;
    if (ev->flags_ & Event::kManaged)
        releaseOneShot(static_cast<OneShotEvent *>(ev));
}

void
EventQueue::schedule(Tick when, Callback cb, EventPriority prio)
{
    if (when < now_)
        panic("scheduling event in the past (%llu < %llu)",
              (unsigned long long)when, (unsigned long long)now_);
    OneShotEvent *ev = allocOneShot();
    ev->fn_ = std::move(cb);
    ev->prio_ = static_cast<std::int16_t>(prio);
    schedule(ev, when);
}

// ---- one-shot slab ----

EventQueue::OneShotEvent *
EventQueue::allocOneShot()
{
    if (freeHead_ == nullptr) {
        slabs_.push_back(std::make_unique<OneShotEvent[]>(kSlabSize));
        OneShotEvent *slab = slabs_.back().get();
        for (std::uint32_t i = 0; i < kSlabSize; ++i) {
            slab[i].next_ = freeHead_;
            freeHead_ = &slab[i];
        }
    }
    auto *ev = static_cast<OneShotEvent *>(freeHead_);
    freeHead_ = ev->next_;
    ev->next_ = nullptr;
    ++liveOneShots_;
    return ev;
}

void
EventQueue::releaseOneShot(OneShotEvent *ev)
{
    ev->fn_ = nullptr; // drop captured state now, not at reuse
    ev->queue_ = nullptr;
    ev->next_ = freeHead_;
    freeHead_ = ev;
    --liveOneShots_;
}

// ---- execution ----

bool
EventQueue::findNext(Tick *out)
{
    if (curCount_ > 0) {
        *out = now_;
        return true;
    }
    if (pending_ == 0)
        return false;

    const Tick cursor = now_ + 1;

    // Cascade each level's current-digit bucket: those buckets cover
    // tick ranges that overlap the levels below, so their events must
    // sink before lower levels can be trusted as "earliest". Each
    // bucket is cascaded once per visit of its digit, keeping the
    // per-event relink count bounded by the level count.
    for (int level = kUpperLevels; level >= 1; --level)
        cascadeBucket(level, digitOf(cursor, level));

    std::uint32_t idx;
    if (l0FindAtOrAfter(static_cast<std::uint32_t>(cursor & kMask0),
                        &idx)) {
        *out = (cursor & ~kMask0) + idx;
        return true;
    }

    for (int level = 1; level <= kUpperLevels; ++level) {
        const std::uint32_t digit = digitOf(cursor, level);
        std::uint64_t w = levelWord_[level - 1];
        // All remaining buckets are strictly ahead of the cursor's
        // digit (the current-digit bucket cascaded above).
        w &= digit == 63 ? 0 : (~0ull << (digit + 1));
        if (!w)
            continue;
        const std::uint32_t flat =
            kL0Buckets + (level - 1) * 64 + __builtin_ctzll(w);
        Tick best = ~Tick(0);
        for (Event *ev = buckets_[flat]; ev; ev = ev->next_)
            best = std::min(best, ev->when_);
        *out = best;
        return true;
    }

    ccai_assert(overflowCount_ > 0);
    *out = overflow_.begin()->first;
    return true;
}

void
EventQueue::serviceTick(Tick t)
{
    ccai_assert(curCount_ == 0);
    now_ = t;

    // Pull overflow ticks that now fit in the wheel span.
    while (overflowCount_ > 0) {
        auto it = overflow_.begin();
        if ((it->first ^ (t + 1)) >> kTopShift && it->first != t)
            break;
        Event *ev = it->second;
        std::uint64_t n = 0;
        for (Event *e = ev; e; e = e->next_)
            ++n;
        overflowCount_ -= n;
        overflow_.erase(it);
        collecting_ = true;
        while (ev != nullptr) {
            Event *next = ev->next_;
            ++stats_.cascades;
            insertScheduled(ev);
            ev = next;
        }
        collecting_ = false;
    }

    // Sink this tick's events down the wheel; same-tick ones collect
    // into scratch_ for one batch sort instead of n^2 list inserts.
    collecting_ = true;
    for (int level = kUpperLevels; level >= 1; --level)
        cascadeBucket(level, digitOf(t, level));
    const auto flat = static_cast<std::uint32_t>(t & kMask0);
    Event *ev = buckets_[flat];
    buckets_[flat] = nullptr;
    l0ClearIfEmpty(flat);
    while (ev != nullptr) {
        Event *next = ev->next_;
        --levelCount_[0];
        ccai_assert(ev->when_ == t);
        ev->where_ = Event::kCurList;
        scratch_.push_back(ev);
        ++curCount_;
        ev = next;
    }
    collecting_ = false;

    std::sort(scratch_.begin(), scratch_.end(),
              [](const Event *a, const Event *b) {
                  if (a->prio_ != b->prio_)
                      return a->prio_ < b->prio_;
                  return a->seq_ < b->seq_;
              });
    Event *prev = curTail_;
    for (Event *e : scratch_) {
        e->prev_ = prev;
        e->next_ = nullptr;
        if (prev)
            prev->next_ = e;
        else
            curHead_ = e;
        prev = e;
    }
    curTail_ = prev;
    scratch_.clear();
}

void
EventQueue::dispatchOne()
{
    Event *ev = curHead_;
    ccai_assert(ev != nullptr);
    curHead_ = ev->next_;
    if (curHead_)
        curHead_->prev_ = nullptr;
    else
        curTail_ = nullptr;
    --curCount_;
    --pending_;
    ev->where_ = Event::kUnscheduled;
    ev->prev_ = nullptr;
    ev->next_ = nullptr;
    ++stats_.dispatched;
    ccai_assert(ev->when_ == now_);
    if (ev->flags_ & Event::kManaged) {
        auto *os = static_cast<OneShotEvent *>(ev);
        os->process();
        releaseOneShot(os);
    } else {
        ev->process();
    }
}

std::uint64_t
EventQueue::run(std::uint64_t limit)
{
    std::uint64_t processed = 0;
    while (processed < limit) {
        if (curCount_ == 0) {
            Tick t;
            if (!findNext(&t))
                break;
            serviceTick(t);
        }
        dispatchOne();
        ++processed;
    }
    return processed;
}

std::uint64_t
EventQueue::runUntil(Tick until)
{
    std::uint64_t processed = 0;
    while (true) {
        Tick t;
        if (curCount_ > 0)
            t = now_; // pending current-tick events live at now_
        else if (!findNext(&t))
            break;
        if (t > until)
            break;
        if (curCount_ == 0)
            serviceTick(t);
        dispatchOne();
        ++processed;
    }
    if (now_ < until)
        now_ = until;
    return processed;
}

Tick
EventQueue::nextEventTick()
{
    Tick t = 0;
    const bool found = findNext(&t);
    ccai_assert(found);
    return t;
}

void
EventQueue::reset()
{
    auto unhook = [](Event *head) {
        for (Event *ev = head; ev != nullptr;) {
            Event *next = ev->next_;
            ev->where_ = Event::kUnscheduled;
            ev->queue_ = nullptr;
            ev->prev_ = nullptr;
            ev->next_ = nullptr;
            ev = next;
        }
    };
    unhook(curHead_);
    curHead_ = curTail_ = nullptr;
    curCount_ = 0;
    for (Event *&head : buckets_) {
        unhook(head);
        head = nullptr;
    }
    for (auto &[tick, head] : overflow_)
        unhook(head);
    overflow_.clear();
    overflowCount_ = 0;
    for (auto &w : l0Words_)
        w = 0;
    l0Summary_ = 0;
    for (auto &w : levelWord_)
        w = 0;
    for (auto &c : levelCount_)
        c = 0;

    // Actually release memory: the one-shot slabs (and any captured
    // state still inside recycled nodes) go back to the allocator.
    slabs_.clear();
    freeHead_ = nullptr;
    liveOneShots_ = 0;
    scratch_.clear();
    scratch_.shrink_to_fit();

    now_ = 0;
    nextSeq_ = 0;
    pending_ = 0;
    stats_ = Stats{};
}

void
EventQueue::shrink()
{
    if (liveOneShots_ != 0)
        return;
    slabs_.clear();
    freeHead_ = nullptr;
    scratch_.shrink_to_fit();
}

EventQueue::Stats
EventQueue::snapshotStats() const
{
    Stats s = stats_;
    s.pending = pending_;
    s.oneShotCapacity = oneShotCapacity();
    s.oneShotLive = liveOneShots_;
    return s;
}

} // namespace ccai::sim
