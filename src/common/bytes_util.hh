/**
 * @file
 * Helpers for byte-buffer manipulation: hex encode/decode, endian
 * load/store, and constant-size comparisons.
 */

#ifndef CCAI_COMMON_BYTES_UTIL_HH
#define CCAI_COMMON_BYTES_UTIL_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "types.hh"

namespace ccai
{

/** Encode a byte buffer as a lowercase hex string. */
std::string toHex(const Bytes &data);

/** Decode a hex string (whitespace tolerated) to bytes. */
Bytes fromHex(const std::string &hex);

/** Load a big-endian 32-bit word. */
std::uint32_t loadBe32(const std::uint8_t *p);

/** Store a big-endian 32-bit word. */
void storeBe32(std::uint8_t *p, std::uint32_t v);

/** Load a big-endian 64-bit word. */
std::uint64_t loadBe64(const std::uint8_t *p);

/** Store a big-endian 64-bit word. */
void storeBe64(std::uint8_t *p, std::uint64_t v);

/** Load a little-endian 32-bit word. */
std::uint32_t loadLe32(const std::uint8_t *p);

/** Store a little-endian 32-bit word. */
void storeLe32(std::uint8_t *p, std::uint32_t v);

/** Load a little-endian 64-bit word. */
std::uint64_t loadLe64(const std::uint8_t *p);

/** Store a little-endian 64-bit word. */
void storeLe64(std::uint8_t *p, std::uint64_t v);

/**
 * Timing-independent equality check (simulation-grade: avoids early
 * exit so that tag comparisons match real-hardware semantics).
 */
bool constantTimeEqual(const Bytes &a, const Bytes &b);

/** XOR b into a (sizes must match). */
void xorInto(Bytes &a, const Bytes &b);

} // namespace ccai

#endif // CCAI_COMMON_BYTES_UTIL_HH
