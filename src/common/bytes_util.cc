#include "bytes_util.hh"

#include <cctype>

#include "logging.hh"

namespace ccai
{

std::string
toHex(const Bytes &data)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(data.size() * 2);
    for (std::uint8_t b : data) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

namespace
{

int
hexNibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

} // namespace

Bytes
fromHex(const std::string &hex)
{
    Bytes out;
    out.reserve(hex.size() / 2);
    int hi = -1;
    for (char c : hex) {
        if (std::isspace(static_cast<unsigned char>(c)))
            continue;
        int nib = hexNibble(c);
        if (nib < 0)
            fatal("fromHex: invalid hex character '%c'", c);
        if (hi < 0) {
            hi = nib;
        } else {
            out.push_back(static_cast<std::uint8_t>((hi << 4) | nib));
            hi = -1;
        }
    }
    if (hi >= 0)
        fatal("fromHex: odd number of hex digits");
    return out;
}

std::uint32_t
loadBe32(const std::uint8_t *p)
{
    return (std::uint32_t(p[0]) << 24) | (std::uint32_t(p[1]) << 16) |
           (std::uint32_t(p[2]) << 8) | std::uint32_t(p[3]);
}

void
storeBe32(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 24);
    p[1] = static_cast<std::uint8_t>(v >> 16);
    p[2] = static_cast<std::uint8_t>(v >> 8);
    p[3] = static_cast<std::uint8_t>(v);
}

std::uint64_t
loadBe64(const std::uint8_t *p)
{
    return (std::uint64_t(loadBe32(p)) << 32) | loadBe32(p + 4);
}

void
storeBe64(std::uint8_t *p, std::uint64_t v)
{
    storeBe32(p, static_cast<std::uint32_t>(v >> 32));
    storeBe32(p + 4, static_cast<std::uint32_t>(v));
}

std::uint64_t
loadLe64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

std::uint32_t
loadLe32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

void
storeLe32(std::uint8_t *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i) {
        p[i] = static_cast<std::uint8_t>(v);
        v >>= 8;
    }
}

void
storeLe64(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        p[i] = static_cast<std::uint8_t>(v);
        v >>= 8;
    }
}

bool
constantTimeEqual(const Bytes &a, const Bytes &b)
{
    if (a.size() != b.size())
        return false;
    std::uint8_t diff = 0;
    for (size_t i = 0; i < a.size(); ++i)
        diff |= static_cast<std::uint8_t>(a[i] ^ b[i]);
    return diff == 0;
}

void
xorInto(Bytes &a, const Bytes &b)
{
    ccai_assert(a.size() == b.size());
    for (size_t i = 0; i < a.size(); ++i)
        a[i] ^= b[i];
}

} // namespace ccai
