/**
 * @file
 * Fundamental scalar types and unit helpers shared by all modules.
 */

#ifndef CCAI_COMMON_TYPES_HH
#define CCAI_COMMON_TYPES_HH

#include <cstdint>
#include <vector>

namespace ccai
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Guest/device physical address. */
using Addr = std::uint64_t;

/** Raw byte buffer used for packet payloads and memory contents. */
using Bytes = std::vector<std::uint8_t>;

constexpr Tick kTicksPerPs = 1;
constexpr Tick kTicksPerNs = 1000 * kTicksPerPs;
constexpr Tick kTicksPerUs = 1000 * kTicksPerNs;
constexpr Tick kTicksPerMs = 1000 * kTicksPerUs;
constexpr Tick kTicksPerSec = 1000 * kTicksPerMs;

/** Convert seconds (double) to ticks. */
constexpr Tick
secondsToTicks(double s)
{
    return static_cast<Tick>(s * static_cast<double>(kTicksPerSec));
}

/** Convert ticks to seconds (double). */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerSec);
}

constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * kKiB;
constexpr std::uint64_t kGiB = 1024 * kMiB;

} // namespace ccai

#endif // CCAI_COMMON_TYPES_HH
