/**
 * @file
 * Size-classed buffer pool for the secure data plane's hot paths.
 *
 * Chunk staging, D2H ciphertext reads, and TLP payload copies all
 * want a few-KiB-to-few-hundred-KiB scratch vector per packet; left
 * to the general allocator that is one malloc/free pair per packet
 * on the wall-clock critical path. The pool keeps per-size-class
 * free lists of retired vectors and hands them back with their
 * capacity intact, so steady-state traffic recycles a small working
 * set instead of allocating.
 *
 * Thread-safe: worker-pool lanes acquire and release concurrently
 * with the sim thread. All operations are O(1) under one mutex.
 */

#ifndef CCAI_COMMON_BUFFER_POOL_HH
#define CCAI_COMMON_BUFFER_POOL_HH

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/types.hh"

namespace ccai
{

class BufferPool
{
  public:
    /** Smallest pooled capacity; tiny control payloads bypass. */
    static constexpr std::size_t kMinPooledBytes = 1024;
    /** Largest pooled capacity; bigger requests bypass. */
    static constexpr std::size_t kMaxPooledBytes = 4 * kMiB;
    /** Retired buffers kept per size class; excess is freed. */
    static constexpr std::size_t kMaxFreePerClass = 64;

    BufferPool() = default;
    BufferPool(const BufferPool &) = delete;
    BufferPool &operator=(const BufferPool &) = delete;

    /**
     * Get a buffer of exactly @p size bytes (value-initialized only
     * when freshly allocated; recycled buffers carry stale contents —
     * callers overwrite them).
     */
    Bytes acquire(std::size_t size);

    /** Retire a buffer into its size-class free list. */
    void release(Bytes &&buf);

    /** RAII wrapper: releases the buffer on destruction. */
    class Lease
    {
      public:
        Lease() = default;
        Lease(BufferPool &pool, std::size_t size)
            : pool_(&pool), bytes_(pool.acquire(size))
        {}
        ~Lease() { reset(); }

        Lease(Lease &&o) noexcept
            : pool_(o.pool_), bytes_(std::move(o.bytes_))
        {
            o.pool_ = nullptr;
        }
        Lease &
        operator=(Lease &&o) noexcept
        {
            if (this != &o) {
                reset();
                pool_ = o.pool_;
                bytes_ = std::move(o.bytes_);
                o.pool_ = nullptr;
            }
            return *this;
        }
        Lease(const Lease &) = delete;
        Lease &operator=(const Lease &) = delete;

        Bytes &bytes() { return bytes_; }
        const Bytes &bytes() const { return bytes_; }
        std::uint8_t *data() { return bytes_.data(); }
        std::size_t size() const { return bytes_.size(); }
        bool active() const { return pool_ != nullptr; }

        /** Return the buffer to the pool now. */
        void
        reset()
        {
            if (pool_) {
                pool_->release(std::move(bytes_));
                pool_ = nullptr;
            }
            bytes_.clear();
        }

      private:
        BufferPool *pool_ = nullptr;
        Bytes bytes_;
    };

    Lease lease(std::size_t size) { return Lease(*this, size); }

    /** log2 size classes between kMinPooledBytes and kMaxPooledBytes. */
    static constexpr std::size_t kClasses = 13;

    /** Acquires served from a free list. */
    std::uint64_t hits() const;
    /** Acquires that had to allocate (or bypassed the pool). */
    std::uint64_t misses() const;
    /** Buffers currently parked across all free lists. */
    std::size_t freeBuffers() const;
    /** Pooled buffers currently acquired and not yet released. */
    std::uint64_t outstanding() const;
    /** Peak of outstanding() over the pool's lifetime. */
    std::uint64_t outstandingHighWatermark() const;
    /** Peak simultaneous outstanding buffers, per size class. */
    std::vector<std::uint64_t> classHighWatermarks() const;

    /** Drop every cached buffer (tests / memory pressure). */
    void trim();

    /** Zero the hit/miss/outstanding accounting (benches, tests). */
    void resetStats();

    /** Process-wide pool shared by all data-plane components. */
    static BufferPool &global();

  private:
    static std::size_t classIndex(std::size_t size);
    static std::size_t classCapacity(std::size_t cls);

    mutable std::mutex mutex_;
    std::vector<Bytes> free_[kClasses];
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t outstanding_ = 0;
    std::uint64_t outstandingHighWater_ = 0;
    std::uint64_t classOutstanding_[kClasses] = {};
    std::uint64_t classHighWater_[kClasses] = {};
};

} // namespace ccai

#endif // CCAI_COMMON_BUFFER_POOL_HH
