/**
 * @file
 * Bounded lock-free rings for the secure data plane.
 *
 * Two shapes cover every queue in the hot path:
 *
 *  - SpscRing: single-producer single-consumer with cached
 *    counterpart indices, so the steady-state push/pop touches only
 *    one cache line each (the classic io_uring SQ/CQ layout). Used
 *    where one side is the sim thread and the other a single worker.
 *
 *  - MpmcRing: Vyukov bounded queue with a per-cell sequence number;
 *    linearizable tryPush/tryPop from any number of threads. The
 *    data plane uses it MPSC: crypto workers complete descriptors
 *    from many threads, the sim thread reaps in one place.
 *
 * Both are fixed power-of-two capacity and fail (return false)
 * rather than block when full/empty — backpressure is the caller's
 * policy, not the ring's. Occupancy high-watermarks are tracked with
 * relaxed atomics so the metrics plane can export them without
 * perturbing the fast path.
 */

#ifndef CCAI_COMMON_RING_HH
#define CCAI_COMMON_RING_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace ccai
{

namespace detail
{

/** Smallest power of two >= n (n >= 1). */
inline size_t
ringRoundUpPow2(size_t n)
{
    size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

/** Relaxed max-accumulate into @p hw. */
inline void
ringNoteOccupancy(std::atomic<std::uint64_t> &hw, std::uint64_t occ)
{
    std::uint64_t cur = hw.load(std::memory_order_relaxed);
    while (occ > cur &&
           !hw.compare_exchange_weak(cur, occ,
                                     std::memory_order_relaxed))
        ;
}

} // namespace detail

/**
 * Single-producer single-consumer bounded ring. Producer-side and
 * consumer-side state live on separate cache lines; each side caches
 * the other's index and refreshes it only when the cached value
 * would block, so an uncontended push or pop is one store plus one
 * (usually cache-hot) load.
 */
template <typename T>
class SpscRing
{
  public:
    explicit SpscRing(size_t capacity)
        : mask_(detail::ringRoundUpPow2(capacity < 2 ? 2 : capacity) -
                1),
          cells_(mask_ + 1)
    {
    }

    /** Producer only. False when the ring is full (backpressure). */
    bool
    tryPush(T v)
    {
        const std::uint64_t t = tail_.load(std::memory_order_relaxed);
        if (t - cachedHead_ > mask_) {
            cachedHead_ = head_.load(std::memory_order_acquire);
            if (t - cachedHead_ > mask_)
                return false;
        }
        cells_[t & mask_] = std::move(v);
        tail_.store(t + 1, std::memory_order_release);
        detail::ringNoteOccupancy(highWater_, t + 1 - cachedHead_);
        return true;
    }

    /** Consumer only. False when the ring is empty. */
    bool
    tryPop(T &out)
    {
        const std::uint64_t h = head_.load(std::memory_order_relaxed);
        if (h == cachedTail_) {
            cachedTail_ = tail_.load(std::memory_order_acquire);
            if (h == cachedTail_)
                return false;
        }
        out = std::move(cells_[h & mask_]);
        head_.store(h + 1, std::memory_order_release);
        return true;
    }

    size_t capacity() const { return mask_ + 1; }

    /** Approximate occupancy (exact when called from either end). */
    size_t
    size() const
    {
        std::uint64_t t = tail_.load(std::memory_order_acquire);
        std::uint64_t h = head_.load(std::memory_order_acquire);
        return static_cast<size_t>(t - h);
    }

    bool empty() const { return size() == 0; }

    /** Peak occupancy observed at push time. */
    std::uint64_t
    highWatermark() const
    {
        return highWater_.load(std::memory_order_relaxed);
    }

  private:
    size_t mask_;
    std::vector<T> cells_;
    alignas(64) std::atomic<std::uint64_t> head_{0};
    alignas(64) std::uint64_t cachedTail_ = 0; ///< consumer-side
    alignas(64) std::atomic<std::uint64_t> tail_{0};
    alignas(64) std::uint64_t cachedHead_ = 0; ///< producer-side
    alignas(64) std::atomic<std::uint64_t> highWater_{0};
};

/**
 * Vyukov bounded MPMC queue. Every cell carries a sequence number;
 * a producer claims a slot with one CAS on the enqueue cursor, a
 * consumer with one CAS on the dequeue cursor, and the cell sequence
 * hands the slot between them without any shared lock. Used MPSC in
 * the data plane (single reaper), but safe for any producer/consumer
 * mix, which is what the TSan stress test exercises.
 */
template <typename T>
class MpmcRing
{
  public:
    explicit MpmcRing(size_t capacity)
        : mask_(detail::ringRoundUpPow2(capacity < 2 ? 2 : capacity) -
                1),
          cells_(mask_ + 1)
    {
        for (size_t i = 0; i <= mask_; ++i)
            cells_[i].seq.store(i, std::memory_order_relaxed);
    }

    /** Any thread. False when the ring is full. */
    bool
    tryPush(T v)
    {
        Cell *cell;
        std::uint64_t pos = enq_.load(std::memory_order_relaxed);
        for (;;) {
            cell = &cells_[pos & mask_];
            std::uint64_t seq =
                cell->seq.load(std::memory_order_acquire);
            std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos);
            if (diff == 0) {
                if (enq_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                    break;
            } else if (diff < 0) {
                return false; // full
            } else {
                pos = enq_.load(std::memory_order_relaxed);
            }
        }
        cell->value = std::move(v);
        cell->seq.store(pos + 1, std::memory_order_release);
        detail::ringNoteOccupancy(
            highWater_, pos + 1 - deq_.load(std::memory_order_relaxed));
        return true;
    }

    /** Any thread. False when the ring is empty. */
    bool
    tryPop(T &out)
    {
        Cell *cell;
        std::uint64_t pos = deq_.load(std::memory_order_relaxed);
        for (;;) {
            cell = &cells_[pos & mask_];
            std::uint64_t seq =
                cell->seq.load(std::memory_order_acquire);
            std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos + 1);
            if (diff == 0) {
                if (deq_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                    break;
            } else if (diff < 0) {
                return false; // empty
            } else {
                pos = deq_.load(std::memory_order_relaxed);
            }
        }
        out = std::move(cell->value);
        cell->seq.store(pos + mask_ + 1, std::memory_order_release);
        return true;
    }

    size_t capacity() const { return mask_ + 1; }

    /** Approximate occupancy (racy by construction). */
    size_t
    size() const
    {
        std::uint64_t e = enq_.load(std::memory_order_acquire);
        std::uint64_t d = deq_.load(std::memory_order_acquire);
        return e > d ? static_cast<size_t>(e - d) : 0;
    }

    bool empty() const { return size() == 0; }

    /** Peak occupancy observed at push time. */
    std::uint64_t
    highWatermark() const
    {
        return highWater_.load(std::memory_order_relaxed);
    }

  private:
    struct Cell
    {
        std::atomic<std::uint64_t> seq{0};
        T value{};
    };

    size_t mask_;
    std::vector<Cell> cells_;
    alignas(64) std::atomic<std::uint64_t> enq_{0};
    alignas(64) std::atomic<std::uint64_t> deq_{0};
    alignas(64) std::atomic<std::uint64_t> highWater_{0};
};

} // namespace ccai

#endif // CCAI_COMMON_RING_HH
