/**
 * @file
 * Logging and error-reporting primitives in the gem5 idiom.
 *
 * panic()  -- internal invariant violated; a bug in the simulator.
 * fatal()  -- the simulation cannot continue because of a user error
 *             (bad configuration, invalid arguments).
 * warn()   -- something is off but execution can continue.
 * inform() -- status message, no connotation of incorrect behaviour.
 */

#ifndef CCAI_COMMON_LOGGING_HH
#define CCAI_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ccai
{

/** Severity of a log record. */
enum class LogLevel
{
    Debug,
    Info,
    Warn,
    Error,
};

/**
 * Global log configuration. The threshold suppresses records below it;
 * benchmarks raise it to Warn so figure output stays clean.
 */
class LogConfig
{
  public:
    static LogLevel &
    threshold()
    {
        static LogLevel level = LogLevel::Info;
        return level;
    }

    /** RAII helper that silences Info/Debug records in a scope. */
    class Quiet
    {
      public:
        Quiet() : saved_(threshold()) { threshold() = LogLevel::Warn; }
        ~Quiet() { threshold() = saved_; }

      private:
        LogLevel saved_;
    };
};

namespace detail
{

void logRecord(LogLevel level, const char *tag, const std::string &msg);

std::string vformat(const char *fmt, va_list ap);

} // namespace detail

/** Report a simulator bug and abort. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user error and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious condition; execution continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Verbose debugging output, suppressed unless threshold is Debug. */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * warn() that only reports the first few occurrences per call-site
 * key, then goes quiet. Fault-injection runs can trigger the same
 * recoverable condition thousands of times; the first handful of
 * records carries all the signal.
 */
void warnRateLimited(const std::string &key, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/**
 * Exception thrown by simulation components on protocol/security
 * violations that tests want to observe rather than die on.
 */
class SimError : public std::runtime_error
{
  public:
    explicit SimError(const std::string &what) : std::runtime_error(what) {}
};

/** panic() unless the condition holds. */
#define ccai_assert(cond)                                                  \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::ccai::panic("assertion '%s' failed at %s:%d", #cond,         \
                          __FILE__, __LINE__);                             \
        }                                                                  \
    } while (0)

} // namespace ccai

#endif // CCAI_COMMON_LOGGING_HH
