#include "buffer_pool.hh"

namespace ccai
{

// Classes are powers of two: 1 KiB, 2 KiB, ... 4 MiB.
static_assert(BufferPool::kMinPooledBytes << (13 - 1) ==
              BufferPool::kMaxPooledBytes);

std::size_t
BufferPool::classIndex(std::size_t size)
{
    std::size_t cap = kMinPooledBytes;
    std::size_t cls = 0;
    while (cap < size) {
        cap <<= 1;
        ++cls;
    }
    return cls;
}

std::size_t
BufferPool::classCapacity(std::size_t cls)
{
    return kMinPooledBytes << cls;
}

Bytes
BufferPool::acquire(std::size_t size)
{
    if (size < kMinPooledBytes || size > kMaxPooledBytes) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++misses_;
        return Bytes(size);
    }
    std::size_t cls = classIndex(size);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++outstanding_;
        if (outstanding_ > outstandingHighWater_)
            outstandingHighWater_ = outstanding_;
        ++classOutstanding_[cls];
        if (classOutstanding_[cls] > classHighWater_[cls])
            classHighWater_[cls] = classOutstanding_[cls];
        auto &list = free_[cls];
        if (!list.empty()) {
            Bytes buf = std::move(list.back());
            list.pop_back();
            ++hits_;
            // Capacity is at least the class size, so this resize
            // never reallocates; contents are stale by contract.
            buf.resize(size);
            return buf;
        }
        ++misses_;
    }
    Bytes buf;
    buf.reserve(classCapacity(cls));
    buf.resize(size);
    return buf;
}

void
BufferPool::release(Bytes &&buf)
{
    std::size_t cap = buf.capacity();
    if (cap < kMinPooledBytes || cap > kMaxPooledBytes * 2)
        return; // unpooled allocation; let it free normally
    // Park under the largest class the capacity fully covers.
    std::size_t cls = classIndex(cap);
    if (classCapacity(cls) > cap) {
        if (cls == 0)
            return;
        --cls;
    }
    if (cls >= kClasses)
        cls = kClasses - 1;
    std::lock_guard<std::mutex> lock(mutex_);
    // Saturating: tolerates release of buffers that were not acquired
    // from this pool (callers may park any suitably-sized vector).
    if (outstanding_ > 0)
        --outstanding_;
    if (classOutstanding_[cls] > 0)
        --classOutstanding_[cls];
    auto &list = free_[cls];
    if (list.size() >= kMaxFreePerClass)
        return;
    list.push_back(std::move(buf));
}

std::uint64_t
BufferPool::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t
BufferPool::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

std::size_t
BufferPool::freeBuffers() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const auto &list : free_)
        n += list.size();
    return n;
}

std::uint64_t
BufferPool::outstanding() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return outstanding_;
}

std::uint64_t
BufferPool::outstandingHighWatermark() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return outstandingHighWater_;
}

std::vector<std::uint64_t>
BufferPool::classHighWatermarks() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return std::vector<std::uint64_t>(classHighWater_,
                                      classHighWater_ + kClasses);
}

void
BufferPool::resetStats()
{
    std::lock_guard<std::mutex> lock(mutex_);
    hits_ = 0;
    misses_ = 0;
    outstandingHighWater_ = outstanding_;
    for (std::size_t i = 0; i < kClasses; ++i)
        classHighWater_[i] = classOutstanding_[i];
}

void
BufferPool::trim()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &list : free_)
        list.clear();
}

BufferPool &
BufferPool::global()
{
    // Intentionally leaked: TLP payloads release into this pool from
    // destructors that may run during static teardown, after a
    // function-local static would already be gone.
    static BufferPool *pool = new BufferPool;
    return *pool;
}

} // namespace ccai
