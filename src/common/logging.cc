#include "logging.hh"

#include <cstdarg>
#include <cstdint>
#include <map>

namespace ccai
{

namespace detail
{

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed < 0)
        return std::string(fmt);
    std::string out(static_cast<size_t>(needed), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap);
    return out;
}

void
logRecord(LogLevel level, const char *tag, const std::string &msg)
{
    if (level < LogConfig::threshold())
        return;
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // namespace detail

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    detail::logRecord(LogLevel::Error, "panic", msg);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    detail::logRecord(LogLevel::Error, "fatal", msg);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    detail::logRecord(LogLevel::Warn, "warn", msg);
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    detail::logRecord(LogLevel::Info, "info", msg);
}

void
debugLog(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    detail::logRecord(LogLevel::Debug, "debug", msg);
}

void
warnRateLimited(const std::string &key, const char *fmt, ...)
{
    static constexpr std::uint64_t kMaxPerKey = 5;
    static std::map<std::string, std::uint64_t> counts;

    std::uint64_t n = ++counts[key];
    if (n > kMaxPerKey)
        return;

    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    if (n == kMaxPerKey)
        msg += " (further '" + key + "' warnings suppressed)";
    detail::logRecord(LogLevel::Warn, "warn", msg);
}

} // namespace ccai
