#include "tvm.hh"

#include "common/bytes_util.hh"
#include "common/logging.hh"

namespace ccai::tvm
{

namespace mm = pcie::memmap;

Tvm::Tvm(sim::System &sys, std::string name, pcie::RootComplex &rc,
         pcie::Bdf bdf, const TvmTiming &timing)
    : sim::SimObject(sys, std::move(name)), rc_(rc), bdf_(bdf),
      timing_(timing)
{
    // Per-tenant vector for interrupts steered at this TVM's ID,
    // plus — for the first TVM on the root — the default handler
    // for legacy implicitly-routed MSIs.
    if (!rc_.hasDefaultMsgHandler()) {
        rc_.setMsgHandler(
            [this](const pcie::TlpPtr &tlp) { handleMsi(tlp); });
    }
    rc_.addMsgHandler(bdf_.raw(), [this](const pcie::TlpPtr &tlp) {
        handleMsi(tlp);
    });
}

void
Tvm::mmioWrite(Addr addr, Bytes data)
{
    pcie::Tlp tlp = pcie::Tlp::makeMemWrite(bdf_, addr, std::move(data));
    rc_.sendWrite(std::move(tlp));
}

void
Tvm::mmioWrite64(Addr addr, std::uint64_t value)
{
    Bytes data(8);
    storeLe64(data.data(), value);
    mmioWrite(addr, std::move(data));
}

void
Tvm::mmioRead(Addr addr, std::uint32_t length,
              std::function<void(Bytes)> cb)
{
    pcie::Tlp tlp = pcie::Tlp::makeMemRead(bdf_, addr, length, 0);
    rc_.sendRead(std::move(tlp),
                 [cb = std::move(cb)](const pcie::TlpPtr &cpl) {
                     cb(cpl->data);
                 });
}

void
Tvm::waitInterrupt(std::function<void()> cb)
{
    irqWaiters_.push_back(std::move(cb));
}

void
Tvm::handleMsi(const pcie::TlpPtr &)
{
    if (irqWaiters_.empty()) {
        warn("%s: spurious MSI", name().c_str());
        return;
    }
    auto cb = std::move(irqWaiters_.front());
    irqWaiters_.erase(irqWaiters_.begin());
    eventq().scheduleIn(timing_.interruptOverhead, std::move(cb));
}

void
Tvm::configureIommu(bool secure)
{
    if (!secure) {
        rc_.setIommuCheck({}); // passthrough
        return;
    }
    rc_.setIommuCheck([](pcie::Bdf requester, Addr addr,
                         std::uint64_t len) {
        using namespace pcie::wellknown;
        if (requester == kXpu) {
            return mm::kBounceH2d.contains(addr, len) ||
                   mm::kBounceD2h.contains(addr, len);
        }
        if (requester == kPcieSc)
            return mm::kMetadataBuffer.contains(addr, len);
        return false;
    });
}

Tick
Tvm::memcpyDelay(std::uint64_t bytes) const
{
    return secondsToTicks(bytes / timing_.memcpyBytesPerSec);
}

void
Tvm::reset()
{
    irqWaiters_.clear();
}

} // namespace ccai::tvm
