/**
 * @file
 * The ccAI Adaptor (paper §3/§7.1): a kernel module inside the TVM
 * that adds confidential-computing support without touching the
 * native xPU driver or the application. It encrypts workloads into
 * bounce buffers, registers chunk parameters with the PCIe-SC,
 * collects and decrypts results, signs Write-Protected (A3) packets,
 * and manages the PCIe-SC's configuration (rule tables, doorbells).
 *
 * The §5 optimizations are individually switchable so the Figure 11
 * ablation can run the non-optimized design:
 *  - metadata batching (I/O read optimization),
 *  - single-notify writes (I/O write optimization),
 *  - AES-NI hardware crypto and parallel crypto threads.
 */

#ifndef CCAI_TVM_ADAPTOR_HH
#define CCAI_TVM_ADAPTOR_HH

#include <deque>
#include <functional>
#include <optional>

#include "obs/trace.hh"
#include "pcie/transport.hh"
#include "backend/chunk_record.hh"
#include "backend/integrity.hh"
#include "backend/policy.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "trust/key_manager.hh"
#include "tvm/tvm.hh"

namespace ccai::tvm
{

/** Which §5 optimizations are active. */
struct AdaptorConfig
{
    /** I/O-read optimization: consume batched metadata from the
     * host-memory buffer instead of per-record MMIO reads. */
    bool batchMetadataReads = true;
    /** I/O-write optimization: one notify per processed region
     * instead of one per encryption subtask. */
    bool batchNotify = true;
    /** Use AES-NI-class hardware crypto instead of software AES. */
    bool hardwareCrypto = true;
    /** Parallel CPU threads for security operations. */
    int cryptoThreads = 2;

    /** Bounce-buffer chunk granularity. */
    std::uint64_t chunkBytes = 256 * kKiB;
    /** Subtask granularity of the non-optimized design. */
    std::uint64_t subtaskBytes = 4 * kKiB;
    /**
     * D2H staging-slot size: when one collection exceeds the slot,
     * the device must wait for the Adaptor to drain it before
     * writing more, serializing DMA with decryption (a prototype
     * bounce-buffer capacity effect, visible in the paper's batch
     * sweep as the overhead rise beyond ~12 sequences).
     */
    std::uint64_t d2hSlotBytes = 1 * kMiB;
    /** IV-counter rotation threshold (must match the PCIe-SC's). */
    std::uint32_t ivExhaustionLimit = 0xffff0000u;

    /**
     * This tenant's slices of the shared bounce/metadata regions
     * (multi-tenant platforms partition them; the defaults give a
     * single tenant everything, matching the paper's prototype).
     */
    pcie::AddrRange h2dWindow = pcie::memmap::kBounceH2d;
    pcie::AddrRange d2hWindow = pcie::memmap::kBounceD2h;
    pcie::AddrRange metaWindow = pcie::memmap::kMetadataBuffer;

    /**
     * End-to-end retry policy (must match the PCIe-SC's): bounded
     * retransmission of doorbell/config writes, record re-fetch, and
     * D2H chunk re-requests. Off by default for raw fixtures; the
     * Platform enables it together with the SC/root-complex sides.
     */
    pcie::RetryConfig retry;

    /** Fully non-optimized configuration (Figure 11 baseline). */
    static AdaptorConfig
    noOptimizations()
    {
        AdaptorConfig c;
        c.batchMetadataReads = false;
        c.batchNotify = false;
        c.hardwareCrypto = false;
        c.cryptoThreads = 1;
        return c;
    }
};

/** CPU-side crypto/copy timing of the Adaptor. */
struct AdaptorTiming
{
    /** AES-NI throughput per thread (bytes/s). */
    double aesNiBytesPerSec = 4.5e9;
    /** Software AES throughput per thread (bytes/s). */
    double softAesBytesPerSec = 0.40e9;
    /** Fixed CPU cost per chunk (record build, IV, bookkeeping). */
    Tick perChunkSetup = 400 * kTicksPerNs;
    /** Extra CPU cost per subtask in the non-optimized design. */
    Tick perSubtaskOverhead = 700 * kTicksPerNs;
    /**
     * Latency for the PCIe-SC to rebuild its rule tables after an
     * encrypted policy update (FPGA table install). Paid once per
     * request when the per-request bounce windows are refreshed.
     */
    Tick policyInstallLatency = 900 * kTicksPerUs;
    /**
     * Pipeline stall per extra D2H slot pass (device blocked on the
     * Adaptor draining the staging slot: slot decrypt + doorbell
     * round trip).
     */
    Tick slotDrainStall = 100 * kTicksPerUs;
};

/**
 * The Adaptor kernel module.
 */
class Adaptor : public sim::SimObject
{
  public:
    using DoneCb = std::function<void()>;
    using DataCb = std::function<void(Bytes)>;

    Adaptor(sim::System &sys, std::string name, Tvm &tvm,
            const AdaptorConfig &config = {},
            const AdaptorTiming &timing = {});

    /** hw_init: reset interaction state with the PCIe-SC. */
    void hwInit();

    /**
     * Establish the confidential session from the attestation
     * secret: derive workload keys, the A3 signing key, and the
     * filter-config key (must match PcieSc::establishSession).
     */
    void establishSession(const Bytes &sessionSecret);

    /**
     * Crash recovery: tear the session down without the end-task
     * doorbell (the controller may be dead and would drop it).
     * Destroys the workload keys, drops the ARQ sender window, and
     * bumps the session epoch so in-flight CPU continuations from
     * the dead session no-op instead of touching fresh keys.
     */
    void abortSession();

    /** True while a confidential session is established. */
    bool sessionActive() const { return keys_ != nullptr; }

    /**
     * Watchdog liveness probes: non-posted reads of the PCIe-SC
     * heartbeat register (resp. the xPU status register); @p cb
     * receives whether the reply looks alive. Against a dead device
     * the completion may never arrive (or arrive late as a
     * fabricated abort) — the watchdog's own probe deadline, not
     * this callback, decides the round.
     */
    void pingSc(std::function<void(bool)> cb);
    void pingXpu(std::function<void(bool)> cb);

    /**
     * pkt_filter_manage: encrypt the rule tables under the config
     * key and write them into the PCIe-SC's rule BAR.
     */
    void pktFilterManage(const backend::RuleTables &tables);

    /**
     * Prepare an H2D transfer: encrypt @p data (or a synthetic
     * region of @p length bytes) into the H2D bounce buffer,
     * register the chunk records, and notify the PCIe-SC.
     *
     * @param done receives the bounce address the device should
     *             DMA from.
     */
    void prepareH2d(std::optional<Bytes> data, std::uint64_t length,
                    std::function<void(Addr)> done,
                    bool scTerminated = false);

    /**
     * Collect a completed D2H transfer from the bounce buffer:
     * fetch the chunk records (batched or per-record), decrypt, and
     * deliver the plaintext (empty for synthetic transfers).
     */
    void collectD2h(Addr bounceAddr, std::uint64_t length,
                    bool synthetic, DataCb done,
                    bool scTerminated = false);

    /** Sign and send an A3 (Write Protected) MMIO write. */
    void writeSigned(Addr addr, Bytes data);

    /** Reserve a window in the D2H bounce buffer for a transfer. */
    Addr allocD2hBounce(std::uint64_t length);

    /**
     * Send a signed vendor-defined management message (paper §9:
     * customized packets keep the standard header format, so the
     * PCIe-SC can classify and integrity-check them via rules).
     */
    void sendVendorMessage(Bytes payload);

    /** Send the end-of-task doorbell (environment scrub, §4.2). */
    void endTask(bool softResetSupported);

    /** Remember the session policy for per-request refreshes. */
    void setPolicy(const backend::RuleTables &tables) { policy_ = tables; }

    /**
     * Re-install the session policy (per-request bounce windows) and
     * wait out the controller's table-install latency. No-op when no
     * policy was set.
     */
    void refreshPolicy(DoneCb done);

    const AdaptorConfig &config() const { return config_; }
    void setConfig(const AdaptorConfig &config) { config_ = config; }
    trust::WorkloadKeyManager *keyManager() { return keys_.get(); }
    sim::StatGroup &stats() { return stats_; }
    sim::StatGroup *statGroup() override { return &stats_; }

    /** CPU time to encrypt/decrypt @p bytes with current config. */
    Tick cryptoDelay(std::uint64_t bytes) const;

    void reset() override;

  private:
    /** In-flight state of one D2H collection under retry. */
    struct CollectState
    {
        Addr bounceAddr = 0;
        std::uint64_t length = 0;
        bool synthetic = false;
        bool scTerminated = false;
        DataCb done;
        std::vector<backend::ChunkRecord> recs; ///< deduped, addr-sorted
        std::vector<Bytes> plain; ///< per-record plaintext (staged)
        Bytes out; ///< zero-copy output (opened in place per record)
        std::vector<char> ok;              ///< per-record decrypt ok
        int fetchAttempts = 0;
        Tick startTick = 0; ///< collectD2h() entry, for latency stats
        std::uint64_t epoch = 0; ///< sessionEpoch_ at submission
    };

    /**
     * Serialize work on the Adaptor's CPU context. @p stage names
     * the span on the adaptor's trace track (nullptr: untraced).
     */
    void runOnCpu(Tick duration, DoneCb then,
                  const char *stage = nullptr);

    bool retryEnabled() const { return config_.retry.enabled; }

    /**
     * Stamp, (optionally) sign and send a posted TLP through the
     * tenant's ARQ channel: with retries enabled the TLP enters the
     * unacked window and is retransmitted on NAK or ack timeout.
     * The MAC is computed after the ARQ fields are set (the header
     * MAC covers them, so stripping ackRequired in flight fails
     * verification).
     */
    void sendTransported(pcie::Tlp tlp, bool sign);
    void handleTransportAck(const pcie::TransportAck &ack);
    void goBackN(std::uint64_t fromSeq);
    void armTxTimer();
    void onTxTimeout();
    void retireTxTimer();

    void fetchForCollect(std::shared_ptr<CollectState> st);
    void finishCollect(std::shared_ptr<CollectState> st);
    void attemptDecrypt(std::shared_ptr<CollectState> st, int attempt);
    bool coverageComplete(const CollectState &st) const;

    Addr allocBounce(pcie::AddrRange region, Addr &cursor,
                     std::uint64_t length);
    void fetchRecordsBatched(std::uint64_t expectChunks,
                             std::function<void(
                                 std::vector<backend::ChunkRecord>)> done);
    void fetchRecordsMmio(std::function<void(
                              std::vector<backend::ChunkRecord>)> done);
    void fetchOneRecordMmio(std::uint64_t index, std::uint64_t count,
                            std::vector<backend::ChunkRecord> acc,
                            std::function<void(
                                std::vector<backend::ChunkRecord>)> done);

    Tvm &tvm_;
    AdaptorConfig config_;
    AdaptorTiming timing_;

    std::unique_ptr<trust::WorkloadKeyManager> keys_;
    backend::SignIntegrityEngine signer_; ///< A3 MAC computation
    std::optional<crypto::AesGcm> configCipher_;
    std::unique_ptr<crypto::Drbg> drbg_;
    std::optional<backend::RuleTables> policy_;

    Addr h2dCursor_ = 0;
    Addr d2hCursor_ = 0;
    std::uint64_t nextChunkId_ = 1;
    std::uint64_t nextSeqNo_ = 1;
    /** Completion ring: absolute consumed-record index (mirrors the
     * controller's metaHead; posted back via screg::kRingHead). */
    std::uint64_t metaHead_ = 0;
    /**
     * Records reaped from the completion ring (or fetched via MMIO)
     * that belong to a transfer not being collected yet: with
     * pipelined transfers in flight, one collect's reap can surface
     * the next transfer's records — they wait here instead of being
     * dropped.
     */
    std::vector<backend::ChunkRecord> metaPending_;
    Tick cpuBusyUntil_ = 0;

    /** Downstream ARQ sender window (writes awaiting the SC's ack). */
    std::deque<pcie::TlpPtr> txUnacked_;
    int txAttempts_ = 0;
    bool txDirty_ = false; ///< a retransmission is in flight
    /** Owned ack timer, re-armed in place (no allocation). */
    sim::EventFunctionWrapper txTimer_;
    bool txTimerInit_ = false;
    Tick lastGoBack_ = 0;

    /**
     * Bumped on every establishSession()/abortSession(). CPU-side
     * continuations (seal/open stages, record fetches) capture the
     * epoch they were queued under and bail on mismatch: runOnCpu
     * delays can outlast a crash-recovery reset + re-attestation
     * window, and a stale continuation must not seal under the new
     * session's keys (a keys_-null check alone cannot tell the
     * sessions apart).
     */
    std::uint64_t sessionEpoch_ = 0;

    sim::StatGroup stats_;

    /**
     * Typed handles into stats_, resolved once at construction so
     * the per-chunk/per-write paths never do a string-keyed lookup.
     */
    struct Handles
    {
        explicit Handles(sim::StatGroup &g);

        obs::CounterHandle faultsRecovered;
        obs::CounterHandle faultsFatal;
        obs::CounterHandle transportRetransmits;
        obs::CounterHandle transportTimeoutRetransmits;
        obs::CounterHandle policyUpdates;
        obs::CounterHandle signedWrites;
        obs::CounterHandle h2dChunks;
        obs::CounterHandle h2dBytes;
        obs::CounterHandle d2hBytes;
        obs::CounterHandle ioWrites;
        obs::CounterHandle ioReads;
        obs::CounterHandle vendorMessages;
        obs::CounterHandle recordFetchIncomplete;
        obs::CounterHandle recordFetchRetries;
        obs::CounterHandle d2hIntegrityFailures;
        obs::CounterHandle d2hChunkRetries;
        obs::CounterHandle tasksEnded;
        /** Staged (non-zero-copy) payload copies: 0 in steady state
         * when the bounce windows are pinned. */
        obs::CounterHandle h2dStageCopies;
        obs::CounterHandle d2hStageCopies;

        /** Completion-ring occupancy (produced - consumed) sampled
         * at each batched record reap. */
        obs::HistogramHandle metaRingOccupancy;
        obs::HistogramHandle cpuQueueTicks;   ///< runOnCpu wait
        obs::HistogramHandle h2dCpuTicks;     ///< seal-stage CPU time
        obs::HistogramHandle d2hCpuTicks;     ///< open-stage CPU time
        obs::HistogramHandle h2dPrepareTicks; ///< prepareH2d e2e
        obs::HistogramHandle d2hCollectTicks; ///< collectD2h e2e
    } s_;

    obs::Tracer *tracer_;
    obs::TrackId track_ = obs::kNoTrack;

    /** This adaptor's trace track (lazily named after the object). */
    obs::TrackId
    traceTrack()
    {
        return tracer_->trackCached(track_, name());
    }
};

} // namespace ccai::tvm

#endif // CCAI_TVM_ADAPTOR_HH
