#include "adaptor.hh"

#include <algorithm>

#include "common/bytes_util.hh"
#include "common/logging.hh"

namespace ccai::tvm
{

namespace mm = pcie::memmap;
using sc::ChunkRecord;

Adaptor::Adaptor(sim::System &sys, std::string name, Tvm &tvm,
                 const AdaptorConfig &config,
                 const AdaptorTiming &timing)
    : sim::SimObject(sys, std::move(name)), tvm_(tvm), config_(config),
      timing_(timing), stats_(this->name())
{
}

void
Adaptor::hwInit()
{
    h2dCursor_ = 0;
    d2hCursor_ = 0;
    metaConsumed_ = 0;
    metaReadCursor_ = 0;
    Bytes enable(8, 0);
    enable[0] = 1;
    writeSigned(mm::kScMmio.base + mm::screg::kControl,
                std::move(enable));
}

void
Adaptor::establishSession(const Bytes &sessionSecret)
{
    keys_ = std::make_unique<trust::WorkloadKeyManager>(
        sessionSecret, config_.ivExhaustionLimit);
    signer_.setKey(
        crypto::kdf(sessionSecret, {}, "ccai-a3-integrity", 32));
    configCipher_.emplace(
        crypto::kdf(sessionSecret, {}, "ccai-filter-config", 16));
    drbg_ = std::make_unique<crypto::Drbg>(sessionSecret,
                                           "ccai-adaptor-drbg");
}

void
Adaptor::pktFilterManage(const sc::RuleTables &tables)
{
    if (!configCipher_)
        fatal("Adaptor: pktFilterManage before session establishment");
    Bytes blob = tables.serialize();
    Bytes iv = drbg_->generateIv();
    crypto::Sealed sealed = configCipher_->seal(iv, blob);

    Bytes payload = iv;
    payload.insert(payload.end(), sealed.tag.begin(), sealed.tag.end());
    payload.insert(payload.end(), sealed.ciphertext.begin(),
                   sealed.ciphertext.end());
    tvm_.mmioWrite(mm::kScRuleTable.base, std::move(payload));
    stats_.counter("policy_updates").inc();
}

void
Adaptor::writeSigned(Addr addr, Bytes data)
{
    pcie::Tlp tlp =
        pcie::Tlp::makeMemWrite(tvm_.bdf(), addr, std::move(data));
    tlp.seqNo = nextSeqNo_++;
    if (signer_.hasKey())
        tlp.integrityTag = signer_.computeMac(tlp);
    tvm_.rootComplex().sendWrite(std::move(tlp));
    stats_.counter("signed_writes").inc();
}

Tick
Adaptor::cryptoDelay(std::uint64_t bytes) const
{
    double rate = (config_.hardwareCrypto ? timing_.aesNiBytesPerSec
                                          : timing_.softAesBytesPerSec) *
                  std::max(1, config_.cryptoThreads);
    return secondsToTicks(bytes / rate);
}

void
Adaptor::runOnCpu(Tick duration, DoneCb then)
{
    Tick start = std::max(curTick(), cpuBusyUntil_);
    cpuBusyUntil_ = start + duration;
    eventq().schedule(cpuBusyUntil_, std::move(then));
}

Addr
Adaptor::allocBounce(pcie::AddrRange region, Addr &cursor,
                     std::uint64_t length)
{
    if (cursor + length > region.size)
        cursor = 0; // simple ring reuse; transfers are sequential
    Addr addr = region.base + cursor;
    cursor += length;
    return addr;
}

void
Adaptor::prepareH2d(std::optional<Bytes> data, std::uint64_t length,
                    std::function<void(Addr)> done, bool scTerminated)
{
    if (!keys_)
        fatal("Adaptor: prepareH2d before session establishment");
    if (data && data->size() != length)
        fatal("Adaptor: data/length mismatch");
    if (scTerminated && data)
        fatal("Adaptor: SC-terminated transfers are payload-free");

    Addr bounce = allocBounce(config_.h2dWindow, h2dCursor_, length);
    std::uint64_t chunks =
        (length + config_.chunkBytes - 1) / config_.chunkBytes;
    std::uint64_t subtasks =
        (length + config_.subtaskBytes - 1) / config_.subtaskBytes;

    // CPU cost: en/decryption plus per-chunk bookkeeping; the
    // non-optimized design pays per-subtask overhead as well.
    // SC-terminated traffic (KV-cache swapping) never exists as TVM
    // plaintext: the PCIe-SC en/decrypts it at line rate and the
    // Adaptor only manages records, so no CPU crypto is charged.
    Tick cpu = timing_.perChunkSetup * chunks;
    if (!scTerminated)
        cpu += cryptoDelay(length);
    if (!config_.batchNotify)
        cpu += timing_.perSubtaskOverhead * subtasks;

    runOnCpu(cpu, [this, data = std::move(data), length, bounce, chunks,
                   subtasks, done = std::move(done)]() mutable {
        std::vector<ChunkRecord> records;
        records.reserve(chunks);
        std::uint64_t off = 0;
        while (off < length) {
            std::uint64_t take =
                std::min(config_.chunkBytes, length - off);
            ChunkRecord rec;
            rec.chunkId = nextChunkId_++;
            rec.dir = trust::StreamDir::HostToDevice;
            rec.addr = bounce + off;
            rec.length = static_cast<std::uint32_t>(take);
            // nextIv() may rotate the epoch, so read the epoch id
            // only after drawing the IV.
            rec.iv = keys_->nextIv(trust::StreamDir::HostToDevice);
            rec.epoch =
                keys_->epochId(trust::StreamDir::HostToDevice);
            rec.synthetic = !data.has_value();
            if (data) {
                // Encrypt the chunk in place (one copy out of the
                // source buffer, none for the ciphertext) under the
                // cached epoch cipher.
                Bytes chunk(data->begin() + off,
                            data->begin() + off + take);
                const crypto::AesGcm &cipher = keys_->cipherCached(
                    trust::StreamDir::HostToDevice, rec.epoch);
                rec.tag.resize(crypto::kGcmTagSize);
                cipher.sealInPlace(rec.iv, chunk.data(), chunk.size(),
                                   nullptr, 0, rec.tag.data());
                tvm_.memory().write(bounce + off, chunk);
            } else {
                rec.tag.assign(crypto::kGcmTagSize, 0);
            }
            records.push_back(std::move(rec));
            off += take;
        }
        stats_.counter("h2d_chunks").inc(chunks);
        stats_.counter("h2d_bytes").inc(length);

        Addr param_window =
            mm::kScMmio.base + mm::screg::kParamWindow;
        Addr notify = mm::kScMmio.base + mm::screg::kNotifyTransfer;

        if (config_.batchNotify) {
            // One registration write and one notify for the whole
            // region (§5 I/O-write optimization).
            writeSigned(param_window,
                        ChunkRecord::serializeBatch(records));
            writeSigned(notify, Bytes(8, 1));
            stats_.counter("io_writes").inc(2);
        } else {
            // Non-optimized: each chunk registered separately, each
            // encryption subtask raises its own notify request.
            for (const ChunkRecord &rec : records)
                writeSigned(param_window, rec.serialize());
            for (std::uint64_t i = 0; i < subtasks; ++i)
                writeSigned(notify, Bytes(8, 1));
            stats_.counter("io_writes").inc(records.size() + subtasks);
        }
        done(bounce);
    });
}

Addr
Adaptor::allocD2hBounce(std::uint64_t length)
{
    return allocBounce(config_.d2hWindow, d2hCursor_, length);
}

void
Adaptor::sendVendorMessage(Bytes payload)
{
    pcie::Tlp tlp =
        pcie::Tlp::makeVendorMessage(tvm_.bdf(), std::move(payload));
    tlp.seqNo = nextSeqNo_++;
    if (signer_.hasKey())
        tlp.integrityTag = signer_.computeMac(tlp);
    tvm_.rootComplex().sendWrite(std::move(tlp));
    stats_.counter("vendor_messages").inc();
}

void
Adaptor::collectD2h(Addr bounceAddr, std::uint64_t length,
                    bool synthetic, DataCb done, bool scTerminated)
{
    if (!keys_)
        fatal("Adaptor: collectD2h before session establishment");

    auto decrypt_and_finish =
        [this, bounceAddr, length, synthetic, scTerminated,
         done = std::move(done)](
            std::vector<ChunkRecord> records) {
            // Keep only records covering this transfer.
            std::vector<ChunkRecord> mine;
            for (const ChunkRecord &rec : records) {
                if (rec.addr >= bounceAddr &&
                    rec.addr < bounceAddr + length)
                    mine.push_back(rec);
            }
            std::sort(mine.begin(), mine.end(),
                      [](const ChunkRecord &a, const ChunkRecord &b) {
                          return a.addr < b.addr;
                      });

            Tick cpu = timing_.perChunkSetup * mine.size();
            if (!scTerminated) {
                cpu += cryptoDelay(length);
                // Collections larger than the staging slot stall
                // the device while earlier slots drain.
                std::uint64_t passes =
                    (length + config_.d2hSlotBytes - 1) /
                    config_.d2hSlotBytes;
                if (passes > 1)
                    cpu += (passes - 1) * timing_.slotDrainStall;
            }
            if (!config_.batchNotify) {
                std::uint64_t subtasks =
                    (length + config_.subtaskBytes - 1) /
                    config_.subtaskBytes;
                cpu += timing_.perSubtaskOverhead * subtasks;
            }
            if (!scTerminated)
                cpu += tvm_.memcpyDelay(length); // bounce -> private

            runOnCpu(cpu, [this, mine = std::move(mine), synthetic,
                           scTerminated, length,
                           done = std::move(done)]() {
                Bytes plaintext;
                if (!synthetic && !scTerminated) {
                    for (const ChunkRecord &rec : mine) {
                        Bytes ct =
                            tvm_.memory().read(rec.addr, rec.length);
                        const crypto::AesGcm &cipher =
                            keys_->cipherCached(
                                trust::StreamDir::DeviceToHost,
                                rec.epoch);
                        if (rec.tag.size() != crypto::kGcmTagSize ||
                            !cipher.openInPlace(rec.iv, ct.data(),
                                                ct.size(),
                                                rec.tag.data(),
                                                nullptr, 0)) {
                            stats_.counter("d2h_integrity_failures")
                                .inc();
                            warn("%s: D2H chunk %llu failed integrity",
                                 name().c_str(),
                                 (unsigned long long)rec.chunkId);
                            continue;
                        }
                        plaintext.insert(plaintext.end(), ct.begin(),
                                         ct.end());
                    }
                }
                stats_.counter("d2h_bytes").inc(length);
                done(std::move(plaintext));
            });
        };

    if (config_.batchMetadataReads) {
        std::uint64_t chunks =
            (length + config_.chunkBytes - 1) / config_.chunkBytes;
        fetchRecordsBatched(chunks, std::move(decrypt_and_finish));
    } else {
        fetchRecordsMmio(std::move(decrypt_and_finish));
    }
}

void
Adaptor::fetchRecordsBatched(
    std::uint64_t expectChunks,
    std::function<void(std::vector<ChunkRecord>)> done)
{
    (void)expectChunks;
    // Flush any records still queued on the controller, then read
    // the count (one I/O read) and consume the batch directly from
    // the host-memory metadata buffer.
    writeSigned(mm::kScMmio.base + mm::screg::kMetaDoorbell,
                Bytes(8, 1));
    tvm_.mmioRead(
        mm::kScMmio.base + mm::screg::kRecordCount, 8,
        [this, done = std::move(done)](Bytes payload) {
            std::uint64_t delivered =
                payload.size() >= 8 ? loadLe64(payload.data()) : 0;
            std::uint64_t fresh = delivered - metaConsumed_;
            stats_.counter("io_reads").inc(1);

            Bytes blob = tvm_.memory().read(
                config_.metaWindow.base + metaReadCursor_,
                fresh * ChunkRecord::kWireBytes);
            metaReadCursor_ += fresh * ChunkRecord::kWireBytes;
            std::vector<ChunkRecord> records =
                ChunkRecord::deserializeBatch(blob);

            // Acknowledge consumption; the controller resets its
            // cursor once everything delivered has been consumed.
            Bytes ack(8);
            storeLe64(ack.data(), fresh);
            writeSigned(mm::kScMmio.base + mm::screg::kRecordAck,
                        std::move(ack));
            metaConsumed_ = 0;
            metaReadCursor_ = 0;
            done(std::move(records));
        });
}

void
Adaptor::fetchRecordsMmio(
    std::function<void(std::vector<ChunkRecord>)> done)
{
    tvm_.mmioRead(
        mm::kScMmio.base + mm::screg::kRecordCount, 8,
        [this, done = std::move(done)](Bytes payload) {
            std::uint64_t count =
                payload.size() >= 8 ? loadLe64(payload.data()) : 0;
            stats_.counter("io_reads").inc(1);
            fetchOneRecordMmio(0, count, {}, std::move(done));
        });
}

void
Adaptor::fetchOneRecordMmio(
    std::uint64_t index, std::uint64_t count,
    std::vector<ChunkRecord> acc,
    std::function<void(std::vector<ChunkRecord>)> done)
{
    if (index >= count) {
        // Release the records on the controller.
        Bytes ack(8);
        storeLe64(ack.data(), count);
        writeSigned(mm::kScMmio.base + mm::screg::kRecordAck,
                    std::move(ack));
        done(std::move(acc));
        return;
    }
    // One full MMIO round trip per record: this is the redundant
    // I/O-read pattern §5 eliminates.
    Addr addr = mm::kScMmio.base + mm::screg::kRecordWindow +
                index * ChunkRecord::kWireBytes;
    tvm_.mmioRead(addr, ChunkRecord::kWireBytes,
                  [this, index, count, acc = std::move(acc),
                   done = std::move(done)](Bytes payload) mutable {
                      stats_.counter("io_reads").inc(1);
                      acc.push_back(ChunkRecord::deserialize(payload));
                      fetchOneRecordMmio(index + 1, count,
                                         std::move(acc),
                                         std::move(done));
                  });
}

void
Adaptor::refreshPolicy(DoneCb done)
{
    if (!policy_) {
        done();
        return;
    }
    pktFilterManage(*policy_);
    // The controller needs time to rebuild the double-buffered rule
    // tables before the request's transfers may proceed.
    runOnCpu(timing_.policyInstallLatency, std::move(done));
}

void
Adaptor::endTask(bool softResetSupported)
{
    Bytes value(8, 0);
    value[0] = softResetSupported ? 1 : 0;
    writeSigned(mm::kScMmio.base + mm::screg::kEndTask,
                std::move(value));
    if (keys_)
        keys_->destroy();
    keys_.reset();
    stats_.counter("tasks_ended").inc();
}

void
Adaptor::reset()
{
    keys_.reset();
    configCipher_.reset();
    drbg_.reset();
    h2dCursor_ = d2hCursor_ = 0;
    nextChunkId_ = 1;
    nextSeqNo_ = 1;
    metaConsumed_ = 0;
    metaReadCursor_ = 0;
    cpuBusyUntil_ = 0;
    stats_.reset();
}

} // namespace ccai::tvm
