#include "adaptor.hh"

#include <algorithm>
#include <cstring>

#include "common/buffer_pool.hh"
#include "common/bytes_util.hh"
#include "common/logging.hh"
#include "crypto/worker_pool.hh"

namespace ccai::tvm
{

namespace mm = pcie::memmap;
using backend::ChunkRecord;

Adaptor::Handles::Handles(sim::StatGroup &g)
    : faultsRecovered(g.counterHandle("faults_recovered")),
      faultsFatal(g.counterHandle("faults_fatal")),
      transportRetransmits(g.counterHandle("transport_retransmits")),
      transportTimeoutRetransmits(
          g.counterHandle("transport_timeout_retransmits")),
      policyUpdates(g.counterHandle("policy_updates")),
      signedWrites(g.counterHandle("signed_writes")),
      h2dChunks(g.counterHandle("h2d_chunks")),
      h2dBytes(g.counterHandle("h2d_bytes")),
      d2hBytes(g.counterHandle("d2h_bytes")),
      ioWrites(g.counterHandle("io_writes")),
      ioReads(g.counterHandle("io_reads")),
      vendorMessages(g.counterHandle("vendor_messages")),
      recordFetchIncomplete(
          g.counterHandle("record_fetch_incomplete")),
      recordFetchRetries(g.counterHandle("record_fetch_retries")),
      d2hIntegrityFailures(
          g.counterHandle("d2h_integrity_failures")),
      d2hChunkRetries(g.counterHandle("d2h_chunk_retries")),
      tasksEnded(g.counterHandle("tasks_ended")),
      h2dStageCopies(g.counterHandle("h2d_stage_copies")),
      d2hStageCopies(g.counterHandle("d2h_stage_copies")),
      metaRingOccupancy(
          g.histogramHandle("meta_ring_occupancy")),
      cpuQueueTicks(g.histogramHandle("cpu_queue_ticks")),
      h2dCpuTicks(g.histogramHandle("h2d_cpu_ticks")),
      d2hCpuTicks(g.histogramHandle("d2h_cpu_ticks")),
      h2dPrepareTicks(g.histogramHandle("h2d_prepare_ticks")),
      d2hCollectTicks(g.histogramHandle("d2h_collect_ticks"))
{}

Adaptor::Adaptor(sim::System &sys, std::string name, Tvm &tvm,
                 const AdaptorConfig &config,
                 const AdaptorTiming &timing)
    : sim::SimObject(sys, std::move(name)), tvm_(tvm), config_(config),
      timing_(timing), stats_(sys.metrics(), this->name()),
      s_(stats_), tracer_(&sys.tracer())
{
    // Consume transport acks for this tenant's ARQ channel. The
    // handler is registered unconditionally (it is inert while
    // retries are disabled) so enabling retries via setConfig works.
    tvm_.rootComplex().addTransportHandler(
        tvm_.bdf().raw(),
        [this](const pcie::TransportAck &ack) {
            handleTransportAck(ack);
        });
}

void
Adaptor::sendTransported(pcie::Tlp tlp, bool sign)
{
    tlp.seqNo = nextSeqNo_++;
    if (retryEnabled()) {
        tlp.ackRequired = true;
        tlp.txChannel = tvm_.bdf().raw();
    }
    if (sign && signer_.hasKey())
        tlp.integrityTag = signer_.computeMac(tlp);
    auto ptr = std::make_shared<pcie::Tlp>(std::move(tlp));
    if (retryEnabled()) {
        txUnacked_.push_back(ptr);
        if (txUnacked_.size() == 1)
            armTxTimer();
    }
    tvm_.rootComplex().sendWrite(ptr);
}

void
Adaptor::handleTransportAck(const pcie::TransportAck &ack)
{
    if (!retryEnabled())
        return;
    if (ack.nak) {
        goBackN(ack.seq);
        return;
    }
    std::size_t before = txUnacked_.size();
    while (!txUnacked_.empty() &&
           txUnacked_.front()->seqNo <= ack.seq) {
        txUnacked_.pop_front();
    }
    std::size_t popped = before - txUnacked_.size();
    if (popped == 0)
        return; // stale cumulative ack
    if (txDirty_)
        s_.faultsRecovered.inc(popped);
    txAttempts_ = 0;
    if (txUnacked_.empty()) {
        txDirty_ = false;
        retireTxTimer();
    } else {
        armTxTimer();
    }
}

void
Adaptor::goBackN(std::uint64_t fromSeq)
{
    // One go-back-N round per gap, not one per NAK behind the gap.
    if (lastGoBack_ != 0 &&
        curTick() - lastGoBack_ < config_.retry.retransmitGap)
        return;
    lastGoBack_ = curTick();
    std::uint64_t n = 0;
    for (const auto &p : txUnacked_) {
        if (p->seqNo >= fromSeq) {
            tvm_.rootComplex().sendWrite(p);
            ++n;
        }
    }
    if (n) {
        txDirty_ = true;
        s_.transportRetransmits.inc(n);
        if (tracer_->enabled())
            tracer_->instant(traceTrack(), "arq.go_back_n", curTick());
    }
}

void
Adaptor::armTxTimer()
{
    if (!txTimerInit_) {
        txTimer_.setCallback([this] { onTxTimeout(); },
                             "adaptor-tx-timeout");
        txTimerInit_ = true;
    }
    Tick timeout = config_.retry.timeoutFor(config_.retry.ackTimeout,
                                            txAttempts_);
    eventq().rescheduleIn(&txTimer_, timeout);
}

void
Adaptor::retireTxTimer()
{
    if (txTimer_.scheduled())
        eventq().deschedule(&txTimer_);
}

void
Adaptor::onTxTimeout()
{
    if (txUnacked_.empty())
        return;
    if (txAttempts_ >= config_.retry.maxRetries) {
        s_.faultsFatal.inc(txUnacked_.size());
        warnRateLimited(
            "adaptor-tx-exhausted",
            "%s: %zu transported writes exhausted the retry "
            "budget",
            name().c_str(), txUnacked_.size());
        txUnacked_.clear();
        txAttempts_ = 0;
        txDirty_ = false;
        return;
    }
    ++txAttempts_;
    txDirty_ = true;
    s_.transportTimeoutRetransmits.inc();
    if (tracer_->enabled())
        tracer_->instant(traceTrack(), "arq.timeout_retx",
                         curTick());
    for (const auto &p : txUnacked_)
        tvm_.rootComplex().sendWrite(p);
    armTxTimer();
}

void
Adaptor::hwInit()
{
    h2dCursor_ = 0;
    d2hCursor_ = 0;
    metaHead_ = 0;
    metaPending_.clear();
    Bytes enable(8, 0);
    enable[0] = 1;
    writeSigned(mm::kScMmio.base + mm::screg::kControl,
                std::move(enable));
}

void
Adaptor::establishSession(const Bytes &sessionSecret)
{
    keys_ = std::make_unique<trust::WorkloadKeyManager>(
        sessionSecret, config_.ivExhaustionLimit);
    signer_.setKey(
        crypto::kdf(sessionSecret, {}, "ccai-a3-integrity", 32));
    configCipher_.emplace(
        crypto::kdf(sessionSecret, {}, "ccai-filter-config", 16));
    drbg_ = std::make_unique<crypto::Drbg>(sessionSecret,
                                           "ccai-adaptor-drbg");
    // A (re-)established session starts a fresh ARQ conversation:
    // the SC resets its per-tenant receive gate in establishTenant,
    // so the sender window must restart at seqNo 1 or every write
    // of the new session would be NAKed as out-of-order.
    nextSeqNo_ = 1;
    txUnacked_.clear();
    txAttempts_ = 0;
    txDirty_ = false;
    retireTxTimer();
    lastGoBack_ = 0;
    ++sessionEpoch_;
    // The controller resets the tenant's completion ring in
    // establishTenant; mirror the consumed index here or the first
    // reap of the new session would re-consume stale slots.
    metaHead_ = 0;
    metaPending_.clear();
}

void
Adaptor::abortSession()
{
    if (keys_)
        keys_->destroy();
    keys_.reset();
    configCipher_.reset();
    drbg_.reset();
    // Unacked writes belong to the dead session; replaying them
    // under a new session would be rejected (stale MACs) anyway.
    txUnacked_.clear();
    txAttempts_ = 0;
    txDirty_ = false;
    retireTxTimer();
    lastGoBack_ = 0;
    ++sessionEpoch_;
}

void
Adaptor::pingSc(std::function<void(bool)> cb)
{
    tvm_.mmioRead(mm::kScMmio.base + mm::screg::kHeartbeat, 8,
                  [cb = std::move(cb)](Bytes payload) {
                      std::uint64_t beats =
                          payload.size() >= 8 ? loadLe64(payload.data())
                                              : 0;
                      cb(beats != 0);
                  });
}

void
Adaptor::pingXpu(std::function<void(bool)> cb)
{
    tvm_.mmioRead(mm::kXpuMmio.base + mm::xpureg::kStatus, 8,
                  [cb = std::move(cb)](Bytes payload) {
                      std::uint64_t status =
                          payload.size() >= 8 ? loadLe64(payload.data())
                                              : 0;
                      cb(status == 0x1);
                  });
}

void
Adaptor::pktFilterManage(const backend::RuleTables &tables)
{
    if (!configCipher_)
        fatal("Adaptor: pktFilterManage before session establishment");
    Bytes blob = tables.serialize();
    Bytes iv = drbg_->generateIv();
    crypto::Sealed sealed = configCipher_->seal(iv, blob);

    Bytes payload = iv;
    payload.insert(payload.end(), sealed.tag.begin(), sealed.tag.end());
    payload.insert(payload.end(), sealed.ciphertext.begin(),
                   sealed.ciphertext.end());
    // Not MAC-signed (the GCM seal authenticates it), but it still
    // rides the ARQ channel so a lossy fabric cannot drop a policy
    // update or reorder it against later doorbells.
    sendTransported(pcie::Tlp::makeMemWrite(tvm_.bdf(),
                                            mm::kScRuleTable.base,
                                            std::move(payload)),
                    /*sign=*/false);
    s_.policyUpdates.inc();
}

void
Adaptor::writeSigned(Addr addr, Bytes data)
{
    sendTransported(pcie::Tlp::makeMemWrite(tvm_.bdf(), addr,
                                            std::move(data)),
                    /*sign=*/true);
    s_.signedWrites.inc();
}

Tick
Adaptor::cryptoDelay(std::uint64_t bytes) const
{
    double rate = (config_.hardwareCrypto ? timing_.aesNiBytesPerSec
                                          : timing_.softAesBytesPerSec) *
                  std::max(1, config_.cryptoThreads);
    return secondsToTicks(bytes / rate);
}

void
Adaptor::runOnCpu(Tick duration, DoneCb then, const char *stage)
{
    Tick start = std::max(curTick(), cpuBusyUntil_);
    s_.cpuQueueTicks.sample(start - curTick());
    cpuBusyUntil_ = start + duration;
    if (stage && tracer_->enabled())
        tracer_->complete(traceTrack(), stage, start, duration);
    eventq().schedule(cpuBusyUntil_, std::move(then));
}

Addr
Adaptor::allocBounce(pcie::AddrRange region, Addr &cursor,
                     std::uint64_t length)
{
    if (cursor + length > region.size)
        cursor = 0; // simple ring reuse; transfers are sequential
    Addr addr = region.base + cursor;
    cursor += length;
    return addr;
}

void
Adaptor::prepareH2d(std::optional<Bytes> data, std::uint64_t length,
                    std::function<void(Addr)> done, bool scTerminated)
{
    if (!keys_)
        fatal("Adaptor: prepareH2d before session establishment");
    if (data && data->size() != length)
        fatal("Adaptor: data/length mismatch");
    if (scTerminated && data)
        fatal("Adaptor: SC-terminated transfers are payload-free");

    Tick t0 = curTick();
    Addr bounce = allocBounce(config_.h2dWindow, h2dCursor_, length);
    std::uint64_t chunks =
        (length + config_.chunkBytes - 1) / config_.chunkBytes;
    std::uint64_t subtasks =
        (length + config_.subtaskBytes - 1) / config_.subtaskBytes;

    // CPU cost: en/decryption plus per-chunk bookkeeping; the
    // non-optimized design pays per-subtask overhead as well.
    // SC-terminated traffic (KV-cache swapping) never exists as TVM
    // plaintext: the PCIe-SC en/decrypts it at line rate and the
    // Adaptor only manages records, so no CPU crypto is charged.
    // Chunk bookkeeping and staging ride the crypto worker lanes, so
    // the per-chunk setup amortizes across cryptoThreads like the
    // crypto itself; only the serial notify path stays per-thread.
    const int width = std::max(1, config_.cryptoThreads);
    Tick cpu = timing_.perChunkSetup * chunks / width;
    if (!scTerminated)
        cpu += cryptoDelay(length);
    if (!config_.batchNotify)
        cpu += timing_.perSubtaskOverhead * subtasks;
    s_.h2dCpuTicks.sample(cpu);

    runOnCpu(cpu, [this, t0, data = std::move(data), length, bounce,
                   chunks, subtasks, done = std::move(done),
                   epoch = sessionEpoch_]() mutable {
        // The session died (crash recovery) while this seal stage
        // was queued on the CPU: drop it. The recovery journal
        // replays the whole operation under the new session.
        if (epoch != sessionEpoch_ || !keys_)
            return;
        // Two-stage parallel seal, deterministic at any thread
        // count: (1) serial record build — nextIv() draws and epoch
        // rotation must happen in chunkId order, and cipherCached()
        // may construct (sharded-cache fill), so both stay on the
        // sim thread; (2) parallel seal. When the bounce window is
        // pinned the plaintext is copied once into the DMA arena and
        // sealed IN PLACE there — zero staging copies; otherwise a
        // pooled staging buffer per chunk is sealed and committed
        // through HostMemory::write (counted by h2d_stage_copies).
        // Seal order never matters: every IV is pre-drawn and every
        // output slot is disjoint, so tags are bit-identical at any
        // width and any completion order.
        std::vector<ChunkRecord> records;
        records.reserve(chunks);
        std::vector<const crypto::AesGcm *> ciphers;
        std::uint64_t off = 0;
        while (off < length) {
            std::uint64_t take =
                std::min(config_.chunkBytes, length - off);
            ChunkRecord rec;
            rec.chunkId = nextChunkId_++;
            rec.dir = trust::StreamDir::HostToDevice;
            rec.addr = bounce + off;
            rec.length = static_cast<std::uint32_t>(take);
            // nextIv() may rotate the epoch, so read the epoch id
            // only after drawing the IV.
            rec.iv = keys_->nextIv(trust::StreamDir::HostToDevice);
            rec.epoch =
                keys_->epochId(trust::StreamDir::HostToDevice);
            rec.synthetic = !data.has_value();
            if (data) {
                ciphers.push_back(&keys_->cipherCached(
                    trust::StreamDir::HostToDevice, rec.epoch));
                rec.tag.resize(crypto::kGcmTagSize);
            } else {
                rec.tag.assign(crypto::kGcmTagSize, 0);
            }
            records.push_back(std::move(rec));
            off += take;
        }

        if (data) {
            const int width = std::max(1, config_.cryptoThreads);
            crypto::WorkerPool &pool = crypto::WorkerPool::shared();
            std::uint8_t *arena = tvm_.memory().raw(bounce, length);
            if (arena && records.size() == 1) {
                // Single chunk in the pinned window: parallelize
                // inside the payload via the segmented-GHASH seal
                // (bit-identical tag).
                std::memcpy(arena, data->data(), length);
                ciphers[0]->sealInPlace(
                    records[0].iv, arena, length, nullptr, 0,
                    records[0].tag.data(), pool, width);
            } else if (arena) {
                pool.runJobs(
                    records.size(), width,
                    [&](std::size_t i) {
                        ChunkRecord &rec = records[i];
                        std::uint64_t o = rec.addr - bounce;
                        std::memcpy(arena + o, data->data() + o,
                                    rec.length);
                        ciphers[i]->sealInPlace(
                            rec.iv, arena + o, rec.length, nullptr,
                            0, rec.tag.data());
                    },
                    [](std::size_t) {});
            } else {
                // Staged fallback for unpinned windows (raw unit
                // fixtures): pooled buffers plus a serial commit
                // through the sparse-page store.
                std::vector<Bytes> staged;
                staged.reserve(records.size());
                for (const ChunkRecord &rec : records) {
                    Bytes chunk =
                        BufferPool::global().acquire(rec.length);
                    std::memcpy(chunk.data(),
                                data->data() + (rec.addr - bounce),
                                rec.length);
                    staged.push_back(std::move(chunk));
                }
                if (staged.size() == 1) {
                    ciphers[0]->sealInPlace(
                        records[0].iv, staged[0].data(),
                        staged[0].size(), nullptr, 0,
                        records[0].tag.data(), pool, width);
                } else {
                    pool.parallelFor(
                        staged.size(), width, [&](std::size_t i) {
                            ciphers[i]->sealInPlace(
                                records[i].iv, staged[i].data(),
                                staged[i].size(), nullptr, 0,
                                records[i].tag.data());
                        });
                }
                for (std::size_t i = 0; i < staged.size(); ++i) {
                    tvm_.memory().write(records[i].addr, staged[i]);
                    BufferPool::global().release(
                        std::move(staged[i]));
                }
                s_.h2dStageCopies.inc(records.size());
            }
        }
        s_.h2dChunks.inc(chunks);
        s_.h2dBytes.inc(length);

        Addr param_window =
            mm::kScMmio.base + mm::screg::kParamWindow;
        Addr notify = mm::kScMmio.base + mm::screg::kNotifyTransfer;

        if (config_.batchNotify) {
            // One registration write and one notify for the whole
            // region (§5 I/O-write optimization).
            writeSigned(param_window,
                        ChunkRecord::serializeBatch(records));
            writeSigned(notify, Bytes(8, 1));
            s_.ioWrites.inc(2);
        } else {
            // Non-optimized: each chunk registered separately, each
            // encryption subtask raises its own notify request.
            for (const ChunkRecord &rec : records)
                writeSigned(param_window, rec.serialize());
            for (std::uint64_t i = 0; i < subtasks; ++i)
                writeSigned(notify, Bytes(8, 1));
            s_.ioWrites.inc(records.size() + subtasks);
        }
        s_.h2dPrepareTicks.sample(curTick() - t0);
        if (tracer_->enabled())
            tracer_->complete(traceTrack(), "h2d.prepare", t0,
                              curTick() - t0);
        done(bounce);
    }, "h2d.seal");
}

Addr
Adaptor::allocD2hBounce(std::uint64_t length)
{
    return allocBounce(config_.d2hWindow, d2hCursor_, length);
}

void
Adaptor::sendVendorMessage(Bytes payload)
{
    sendTransported(pcie::Tlp::makeVendorMessage(tvm_.bdf(),
                                                 std::move(payload)),
                    /*sign=*/true);
    s_.vendorMessages.inc();
}

void
Adaptor::collectD2h(Addr bounceAddr, std::uint64_t length,
                    bool synthetic, DataCb done, bool scTerminated)
{
    if (!keys_)
        fatal("Adaptor: collectD2h before session establishment");

    auto st = std::make_shared<CollectState>();
    st->startTick = curTick();
    st->epoch = sessionEpoch_;
    st->bounceAddr = bounceAddr;
    st->length = length;
    st->synthetic = synthetic;
    st->scTerminated = scTerminated;
    st->done = std::move(done);
    fetchForCollect(std::move(st));
}

void
Adaptor::fetchForCollect(std::shared_ptr<CollectState> st)
{
    if (st->epoch != sessionEpoch_ || !keys_)
        return; // session died under this collection (crash recovery)
    auto handle = [this, st](std::vector<ChunkRecord> records) {
        if (st->epoch != sessionEpoch_ || !keys_)
            return;
        // Claim the records covering this transfer. With pipelined
        // transfers in flight a reap can surface another transfer's
        // records — park those in metaPending_ for its collect
        // instead of dropping them.
        records.insert(records.begin(),
                       std::make_move_iterator(metaPending_.begin()),
                       std::make_move_iterator(metaPending_.end()));
        metaPending_.clear();
        for (ChunkRecord &rec : records) {
            if (rec.addr >= st->bounceAddr &&
                rec.addr < st->bounceAddr + st->length)
                st->recs.push_back(std::move(rec));
            else
                metaPending_.push_back(std::move(rec));
        }
        // Sort by address. A link-level duplicate of a device write
        // yields two records for one address — keep the newest.
        std::sort(st->recs.begin(), st->recs.end(),
                  [](const ChunkRecord &a, const ChunkRecord &b) {
                      return a.addr != b.addr ? a.addr < b.addr
                                              : a.chunkId < b.chunkId;
                  });
        std::vector<ChunkRecord> uniq;
        for (ChunkRecord &rec : st->recs) {
            if (!uniq.empty() && uniq.back().addr == rec.addr)
                uniq.back() = std::move(rec);
            else
                uniq.push_back(std::move(rec));
        }
        st->recs = std::move(uniq);

        if (!retryEnabled() || coverageComplete(*st) ||
            st->fetchAttempts >= config_.retry.maxReadRetries) {
            if (retryEnabled() && !coverageComplete(*st) &&
                st->length != 0)
                s_.recordFetchIncomplete.inc();
            finishCollect(std::move(st));
            return;
        }
        // Records may still sit behind a lost doorbell or an
        // in-flight metadata write: back off and re-fetch. The
        // doorbell/ack bookkeeping is consistent across rounds
        // because each fetch acks everything it consumed.
        ++st->fetchAttempts;
        s_.recordFetchRetries.inc();
        if (tracer_->enabled())
            tracer_->instant(traceTrack(), "record_fetch.retry",
                             curTick());
        Tick wait = config_.retry.timeoutFor(config_.retry.ackTimeout,
                                             st->fetchAttempts - 1);
        eventq().scheduleIn(wait,
                            [this, st] { fetchForCollect(st); });
    };

    if (config_.batchMetadataReads) {
        std::uint64_t chunks =
            (st->length + config_.chunkBytes - 1) / config_.chunkBytes;
        fetchRecordsBatched(chunks, std::move(handle));
    } else {
        fetchRecordsMmio(std::move(handle));
    }
}

bool
Adaptor::coverageComplete(const CollectState &st) const
{
    // recs are addr-sorted and deduped: the transfer is fully
    // described when they tile [bounceAddr, bounceAddr + length).
    Addr next = st.bounceAddr;
    for (const ChunkRecord &rec : st.recs) {
        if (rec.addr > next)
            return false;
        next = std::max(next, rec.addr + rec.length);
    }
    return next >= st.bounceAddr + st.length;
}

void
Adaptor::finishCollect(std::shared_ptr<CollectState> st)
{
    // Per-record bookkeeping and the bounce->private copy ride the
    // crypto worker lanes (each lane drains its own records), so both
    // scale with cryptoThreads; the slot-drain stall is a device
    // round trip and the notify writes are MMIO — both stay serial.
    const int width = std::max(1, config_.cryptoThreads);
    Tick cpu = timing_.perChunkSetup * st->recs.size() / width;
    if (!st->scTerminated) {
        cpu += cryptoDelay(st->length);
        // Collections larger than the staging slot stall the device
        // while earlier slots drain.
        std::uint64_t passes =
            (st->length + config_.d2hSlotBytes - 1) /
            config_.d2hSlotBytes;
        if (passes > 1)
            cpu += (passes - 1) * timing_.slotDrainStall;
    }
    if (!config_.batchNotify) {
        std::uint64_t subtasks =
            (st->length + config_.subtaskBytes - 1) /
            config_.subtaskBytes;
        cpu += timing_.perSubtaskOverhead * subtasks;
    }
    if (!st->scTerminated)
        cpu += tvm_.memcpyDelay(st->length) / width; // bounce -> private
    s_.d2hCpuTicks.sample(cpu);

    runOnCpu(cpu, [this, st = std::move(st)]() mutable {
        attemptDecrypt(std::move(st), 0);
    }, "d2h.open");
}

void
Adaptor::attemptDecrypt(std::shared_ptr<CollectState> st, int attempt)
{
    if (st->epoch != sessionEpoch_ || !keys_)
        return; // session died under this collection (crash recovery)
    if (st->ok.empty() && !st->recs.empty()) {
        st->ok.assign(st->recs.size(), 0);
        st->plain.resize(st->recs.size());
    }
    std::vector<std::uint64_t> failed;
    if (!st->synthetic && !st->scTerminated) {
        // Submission/completion open, mirroring prepareH2d: serial
        // cipher fetch (the sharded epoch cache may fill), then the
        // verify+decrypt jobs are claimed lock-free and their
        // results committed in strict record order — stats,
        // warnings, and the failed list are identical at any thread
        // count and any completion order. When the bounce window is
        // pinned, each record's ciphertext moves once from the DMA
        // arena into its final offset in the output buffer and is
        // opened IN PLACE there (the modeled bounce->private copy;
        // zero staging copies). Unpinned windows fall back to a
        // staged read per record (d2h_stage_copies).
        const std::uint8_t *arena =
            st->length > 0
                ? tvm_.memory().raw(st->bounceAddr, st->length)
                : nullptr;
        if (arena && st->out.empty())
            st->out.resize(st->length);
        std::vector<std::size_t> pending;
        std::vector<const crypto::AesGcm *> ciphers(st->recs.size(),
                                                    nullptr);
        for (std::size_t i = 0; i < st->recs.size(); ++i) {
            if (st->ok[i])
                continue;
            const ChunkRecord &rec = st->recs[i];
            if (!arena) {
                st->plain[i] =
                    tvm_.memory().read(rec.addr, rec.length);
                s_.d2hStageCopies.inc();
            }
            ciphers[i] = &keys_->cipherCached(
                trust::StreamDir::DeviceToHost, rec.epoch);
            pending.push_back(i);
        }
        std::vector<char> okNow(st->recs.size(), 0);
        const int width = std::max(1, config_.cryptoThreads);
        crypto::WorkerPool &pool = crypto::WorkerPool::shared();
        auto openOne = [&](std::size_t i, int lanes) {
            const ChunkRecord &rec = st->recs[i];
            std::uint8_t *ct = nullptr;
            std::size_t len = 0;
            if (arena) {
                std::uint64_t o = rec.addr - st->bounceAddr;
                ct = st->out.data() + o;
                std::memcpy(ct, arena + o, rec.length);
                len = rec.length;
            } else {
                ct = st->plain[i].data();
                len = st->plain[i].size();
            }
            bool ok = rec.tag.size() == crypto::kGcmTagSize;
            if (ok && lanes > 1) {
                ok = ciphers[i]->openInPlace(rec.iv, ct, len,
                                             rec.tag.data(),
                                             nullptr, 0, pool, lanes);
            } else if (ok) {
                ok = ciphers[i]->openInPlace(rec.iv, ct, len,
                                             rec.tag.data(),
                                             nullptr, 0);
            }
            okNow[i] = ok ? 1 : 0;
        };
        auto commitOne = [&](std::size_t i) {
            const ChunkRecord &rec = st->recs[i];
            if (!okNow[i]) {
                s_.d2hIntegrityFailures.inc();
                if (tracer_->enabled())
                    tracer_->instant(traceTrack(),
                                     "d2h.integrity_fail",
                                     curTick());
                warnRateLimited(
                    "adaptor-d2h-integrity",
                    "%s: D2H chunk %llu failed integrity",
                    name().c_str(),
                    (unsigned long long)rec.chunkId);
                failed.push_back(rec.chunkId);
                st->plain[i].clear(); // still ciphertext; drop it
                return;
            }
            st->ok[i] = 1;
            if (attempt > 0)
                s_.faultsRecovered.inc();
        };
        if (pending.size() == 1) {
            // Single record: parallelize inside the payload.
            openOne(pending[0], width);
            commitOne(pending[0]);
        } else if (!pending.empty()) {
            pool.runJobs(
                pending.size(), width,
                [&](std::size_t k) { openOne(pending[k], 1); },
                [&](std::size_t k) { commitOne(pending[k]); });
        }
    }

    if (!failed.empty() && retryEnabled() &&
        attempt < config_.retry.maxReadRetries) {
        // The ciphertext in the bounce buffer was tampered with in
        // flight: ask the controller to replay the affected chunks
        // from its pristine buffer, then re-read and retry.
        for (std::uint64_t chunkId : failed) {
            Bytes v(8);
            storeLe64(v.data(), chunkId);
            writeSigned(mm::kScMmio.base + mm::screg::kChunkRetry,
                        std::move(v));
        }
        s_.d2hChunkRetries.inc(failed.size());
        if (tracer_->enabled())
            tracer_->instant(traceTrack(), "d2h.chunk_retry",
                             curTick());
        Tick wait =
            config_.retry.timeoutFor(config_.retry.ackTimeout, attempt);
        eventq().scheduleIn(wait, [this, st, attempt] {
            attemptDecrypt(st, attempt + 1);
        });
        return;
    }
    if (!failed.empty())
        s_.faultsFatal.inc(failed.size());

    Bytes plaintext;
    if (!st->out.empty()) {
        // Zero-copy path: the records opened in place at their final
        // offsets. Steady state (every chunk verified, full
        // coverage) hands the buffer over without touching it; the
        // rare failure/shortfall case compacts to the same
        // ok-chunks-only byte stream the staged path produces.
        std::uint64_t okBytes = 0;
        bool allOk = !st->recs.empty();
        for (std::size_t i = 0; i < st->recs.size(); ++i) {
            if (st->ok[i])
                okBytes += st->recs[i].length;
            else
                allOk = false;
        }
        if (allOk && okBytes == st->length) {
            plaintext = std::move(st->out);
        } else {
            for (std::size_t i = 0; i < st->recs.size(); ++i) {
                if (!st->ok[i])
                    continue;
                std::uint64_t o =
                    st->recs[i].addr - st->bounceAddr;
                plaintext.insert(
                    plaintext.end(), st->out.begin() + o,
                    st->out.begin() + o + st->recs[i].length);
            }
        }
    } else {
        for (std::size_t i = 0; i < st->recs.size(); ++i) {
            if (!st->ok.empty() && st->ok[i]) {
                plaintext.insert(plaintext.end(),
                                 st->plain[i].begin(),
                                 st->plain[i].end());
            }
        }
    }
    s_.d2hBytes.inc(st->length);
    s_.d2hCollectTicks.sample(curTick() - st->startTick);
    if (tracer_->enabled())
        tracer_->complete(traceTrack(), "d2h.collect", st->startTick,
                          curTick() - st->startTick);
    st->done(std::move(plaintext));
}

void
Adaptor::fetchRecordsBatched(
    std::uint64_t expectChunks,
    std::function<void(std::vector<ChunkRecord>)> done)
{
    (void)expectChunks;
    // Flush any records still accumulating on the controller, then
    // read the ring tail (one I/O read — it doubles as the
    // round-trip sync: the completion is sequenced on the tenant ARQ
    // channel behind the slot DMA writes) and reap the fresh slots
    // straight out of the host-memory completion ring.
    writeSigned(mm::kScMmio.base + mm::screg::kMetaDoorbell,
                Bytes(8, 1));
    tvm_.mmioRead(
        mm::kScMmio.base + mm::screg::kRecordCount, 8,
        [this, done = std::move(done)](Bytes payload) {
            std::uint64_t tail =
                payload.size() >= 8 ? loadLe64(payload.data()) : 0;
            s_.ioReads.inc(1);

            const pcie::AddrRange win = config_.metaWindow;
            const std::uint64_t nslots =
                mm::metaring::slotCount(win.size);
            // Ring occupancy at reap time: produced-but-unconsumed
            // slots. High percentiles near nslots mean the consumer
            // is the bottleneck (producer hitting backpressure).
            s_.metaRingOccupancy.sample(tail - metaHead_);
            // Pinned ring: deserialize from the stable arena
            // pointer; unpinned fixtures copy each slot out of the
            // sparse store.
            const std::uint8_t *ring =
                tvm_.memory().raw(win.base, win.size);
            std::vector<ChunkRecord> records;
            records.reserve(tail - metaHead_);
            for (std::uint64_t idx = metaHead_; idx < tail; ++idx) {
                std::uint64_t off =
                    mm::metaring::slotOffset(idx, nslots);
                Bytes slot =
                    ring ? Bytes(ring + off,
                                 ring + off + ChunkRecord::kWireBytes)
                         : tvm_.memory().read(
                               win.base + off,
                               ChunkRecord::kWireBytes);
                records.push_back(ChunkRecord::deserialize(slot));
            }

            if (tail != metaHead_) {
                // Post the consumed index (posted signed write):
                // the producer's backpressure signal, freeing the
                // slots for reuse.
                metaHead_ = tail;
                Bytes head(8);
                storeLe64(head.data(), metaHead_);
                writeSigned(mm::kScMmio.base + mm::screg::kRingHead,
                            std::move(head));
            }
            done(std::move(records));
        });
}

void
Adaptor::fetchRecordsMmio(
    std::function<void(std::vector<ChunkRecord>)> done)
{
    tvm_.mmioRead(
        mm::kScMmio.base + mm::screg::kRecordCount, 8,
        [this, done = std::move(done)](Bytes payload) {
            std::uint64_t count =
                payload.size() >= 8 ? loadLe64(payload.data()) : 0;
            s_.ioReads.inc(1);
            fetchOneRecordMmio(0, count, {}, std::move(done));
        });
}

void
Adaptor::fetchOneRecordMmio(
    std::uint64_t index, std::uint64_t count,
    std::vector<ChunkRecord> acc,
    std::function<void(std::vector<ChunkRecord>)> done)
{
    if (index >= count) {
        // Release the records on the controller.
        Bytes ack(8);
        storeLe64(ack.data(), count);
        writeSigned(mm::kScMmio.base + mm::screg::kRecordAck,
                    std::move(ack));
        done(std::move(acc));
        return;
    }
    // One full MMIO round trip per record: this is the redundant
    // I/O-read pattern §5 eliminates.
    Addr addr = mm::kScMmio.base + mm::screg::kRecordWindow +
                index * ChunkRecord::kWireBytes;
    tvm_.mmioRead(addr, ChunkRecord::kWireBytes,
                  [this, index, count, acc = std::move(acc),
                   done = std::move(done)](Bytes payload) mutable {
                      s_.ioReads.inc(1);
                      acc.push_back(ChunkRecord::deserialize(payload));
                      fetchOneRecordMmio(index + 1, count,
                                         std::move(acc),
                                         std::move(done));
                  });
}

void
Adaptor::refreshPolicy(DoneCb done)
{
    if (!policy_) {
        done();
        return;
    }
    pktFilterManage(*policy_);
    // The controller needs time to rebuild the double-buffered rule
    // tables before the request's transfers may proceed.
    runOnCpu(timing_.policyInstallLatency, std::move(done),
             "policy.install");
}

void
Adaptor::endTask(bool softResetSupported)
{
    Bytes value(8, 0);
    value[0] = softResetSupported ? 1 : 0;
    writeSigned(mm::kScMmio.base + mm::screg::kEndTask,
                std::move(value));
    if (keys_)
        keys_->destroy();
    keys_.reset();
    s_.tasksEnded.inc();
}

void
Adaptor::reset()
{
    keys_.reset();
    configCipher_.reset();
    drbg_.reset();
    h2dCursor_ = d2hCursor_ = 0;
    nextChunkId_ = 1;
    nextSeqNo_ = 1;
    metaHead_ = 0;
    metaPending_.clear();
    cpuBusyUntil_ = 0;
    txUnacked_.clear();
    txAttempts_ = 0;
    txDirty_ = false;
    retireTxTimer();
    lastGoBack_ = 0;
    ++sessionEpoch_; // retire queued CPU continuations
    stats_.reset();
}

} // namespace ccai::tvm
