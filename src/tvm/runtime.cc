#include "runtime.hh"

#include <algorithm>

#include "backend/protection_backend.hh"
#include "common/logging.hh"
#include "pcie/memory_map.hh"
#include "xpu/xpu_device.hh"

namespace ccai::tvm
{

namespace mm = pcie::memmap;

Runtime::Runtime(sim::System &sys, std::string name, Tvm &tvm,
                 XpuDriver &driver, RuntimeMode mode, Adaptor *adaptor)
    : sim::SimObject(sys, std::move(name)), tvm_(tvm), driver_(driver),
      mode_(mode), adaptor_(adaptor)
{
    if (mode_ == RuntimeMode::Secure && !adaptor_)
        fatal("Runtime: secure mode requires an Adaptor");
}

std::uint32_t
Runtime::secureBurstBytes() const
{
    if (mode_ != RuntimeMode::Secure || !adaptor_)
        return 0;
    std::uint64_t chunk = adaptor_->config().chunkBytes;
    return static_cast<std::uint32_t>(
        std::min<std::uint64_t>(chunk, xpu::XpuDevice::kDmaBurst));
}

Addr
Runtime::allocStaging(std::uint64_t length)
{
    // Pinned staging area inside the TVM-visible DRAM used by the
    // vanilla direct-DMA path.
    if (stagingCursor_ + length > mm::kTvmPrivate.size)
        stagingCursor_ = 0;
    Addr addr = mm::kTvmPrivate.base + stagingCursor_;
    stagingCursor_ += length;
    return addr;
}

void
Runtime::memcpyH2D(Addr devAddr, std::optional<Bytes> data,
                   std::uint64_t length, DoneCb done, TransferKind kind)
{
    if (data && data->size() != length)
        fatal("ccrt: memcpyH2D data/length mismatch");
    h2dPiece(devAddr, std::move(data), 0, length, kind,
             std::move(done));
}

void
Runtime::h2dPiece(Addr devAddr, std::optional<Bytes> data,
                  std::uint64_t offset, std::uint64_t total,
                  TransferKind kind, DoneCb done)
{
    if (offset >= total) {
        done();
        return;
    }
    std::uint64_t length = std::min(total - offset, kMaxPieceBytes);
    std::optional<Bytes> piece;
    if (data)
        piece = Bytes(data->begin() + offset,
                      data->begin() + offset + length);

    auto next = [this, devAddr, data = std::move(data), offset,
                 length, total, kind,
                 done = std::move(done)]() mutable {
        h2dPiece(devAddr, std::move(data), offset + length, total,
                 kind, std::move(done));
    };
    memcpyH2DPiece(devAddr + offset, std::move(piece), length,
                   std::move(next), kind);
}

void
Runtime::memcpyH2DPiece(Addr devAddr, std::optional<Bytes> data,
                        std::uint64_t length, DoneCb done,
                        TransferKind kind)
{
    bytesH2d_ += length;

    auto submit_dma = [this, devAddr, length,
                       synthetic = !data.has_value(),
                       done = std::move(done)](Addr hostAddr) {
        xpu::XpuCommand cmd;
        cmd.type = xpu::XpuCmdType::DmaFromHost;
        cmd.hostAddr = hostAddr;
        cmd.devAddr = devAddr;
        cmd.length = length;
        cmd.synthetic = synthetic;
        cmd.burstBytes = secureBurstBytes();
        driver_.submitCommand(cmd);
        driver_.fence(std::move(done));
    };

    if (mode_ == RuntimeMode::Secure) {
        adaptor_->prepareH2d(std::move(data), length,
                             std::move(submit_dma),
                             kind == TransferKind::KvSwap);
        return;
    }

    // Vanilla: stage plaintext in pinned memory, device pulls it.
    // KV-swap traffic lives in pinned buffers permanently, so it
    // skips the host-side copy.
    Addr staging = allocStaging(length);
    if (data)
        tvm_.memory().write(staging, *data);
    Tick copy = kind == TransferKind::KvSwap
                    ? 0
                    : tvm_.memcpyDelay(length);
    if (protection_) {
        // Rival cost model: the CPU seals the payload into the
        // encrypted bounce buffer before the device may pull it.
        // KV swaps get no exemption — without an on-path crypto
        // engine there is no line-rate path to ride.
        copy += protection_->hostSealDelay(length);
        copy += protection_->perTransferSetup();
    }
    eventq().scheduleIn(copy,
                        [submit_dma = std::move(submit_dma), staging] {
                            submit_dma(staging);
                        });
}

void
Runtime::memcpyD2H(Addr devAddr, std::uint64_t length, bool synthetic,
                   DataCb done, TransferKind kind)
{
    auto acc = std::make_shared<Bytes>();
    d2hPiece(devAddr, 0, length, synthetic, kind, std::move(acc),
             std::move(done));
}

void
Runtime::d2hPiece(Addr devAddr, std::uint64_t offset,
                  std::uint64_t total, bool synthetic,
                  TransferKind kind, std::shared_ptr<Bytes> acc,
                  DataCb done)
{
    if (offset >= total) {
        done(std::move(*acc));
        return;
    }
    std::uint64_t length = std::min(total - offset, kMaxPieceBytes);
    memcpyD2HPiece(
        devAddr + offset, length, synthetic,
        [this, devAddr, offset, length, total, synthetic, kind, acc,
         done = std::move(done)](Bytes piece) mutable {
            acc->insert(acc->end(), piece.begin(), piece.end());
            d2hPiece(devAddr, offset + length, total, synthetic, kind,
                     std::move(acc), std::move(done));
        },
        kind);
}

void
Runtime::memcpyD2HPiece(Addr devAddr, std::uint64_t length,
                        bool synthetic, DataCb done, TransferKind kind)
{
    bytesD2h_ += length;

    if (mode_ == RuntimeMode::Secure) {
        Addr bounce = adaptor_->allocD2hBounce(length);
        xpu::XpuCommand cmd;
        cmd.type = xpu::XpuCmdType::DmaToHost;
        cmd.hostAddr = bounce;
        cmd.devAddr = devAddr;
        cmd.length = length;
        cmd.synthetic = synthetic;
        cmd.burstBytes = secureBurstBytes();
        driver_.submitCommand(cmd);
        driver_.fence([this, bounce, length, synthetic, kind,
                       done = std::move(done)]() {
            adaptor_->collectD2h(bounce, length, synthetic,
                                 std::move(done),
                                 kind == TransferKind::KvSwap);
        });
        return;
    }

    Addr staging = allocStaging(length);
    xpu::XpuCommand cmd;
    cmd.type = xpu::XpuCmdType::DmaToHost;
    cmd.hostAddr = staging;
    cmd.devAddr = devAddr;
    cmd.length = length;
    cmd.synthetic = synthetic;
    driver_.submitCommand(cmd);
    driver_.fence([this, staging, length, synthetic, kind,
                   done = std::move(done)]() {
        Tick copy = kind == TransferKind::KvSwap
                        ? 0
                        : tvm_.memcpyDelay(length);
        if (protection_) {
            copy += protection_->hostOpenDelay(length);
            copy += protection_->perTransferSetup();
        }
        eventq().scheduleIn(copy, [this, staging, length, synthetic,
                                   done = std::move(done)]() {
            Bytes out;
            if (!synthetic)
                out = tvm_.memory().read(staging, length);
            done(std::move(out));
        });
    });
}

void
Runtime::beginRequest(DoneCb done)
{
    if (mode_ == RuntimeMode::Secure) {
        adaptor_->refreshPolicy(std::move(done));
        return;
    }
    // Rival backends charge their per-request setup (command-buffer
    // authentication, granule delegation, ...) here.
    Tick setup = protection_ ? protection_->perRequestSetup() : 0;
    eventq().scheduleIn(setup, std::move(done));
}

void
Runtime::launchKernel(Tick duration)
{
    xpu::XpuCommand cmd;
    cmd.type = xpu::XpuCmdType::LaunchKernel;
    cmd.duration = duration;
    if (protection_) {
        // Confidential-compute mode costs the rivals a fixed factor
        // on kernel time (encrypted HBM / stage-2 translation).
        cmd.duration = static_cast<Tick>(
            static_cast<double>(cmd.duration) *
            protection_->computeOverhead());
    }
    driver_.submitCommand(cmd);
}

void
Runtime::synchronize(DoneCb done)
{
    driver_.fence(std::move(done));
}

void
Runtime::reset()
{
    stagingCursor_ = 0;
    bytesH2d_ = 0;
    bytesD2h_ = 0;
}

} // namespace ccai::tvm
