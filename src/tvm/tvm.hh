/**
 * @file
 * The Trusted VM: the CPU-side confidential environment hosting the
 * xPU application, the unmodified xPU software stack, and ccAI's
 * Adaptor. The TVM owns a private memory region (protected by the
 * platform's TEE primitives), configures the IOMMU policy that the
 * privileged software enforces, and dispatches MSIs to the driver.
 */

#ifndef CCAI_TVM_TVM_HH
#define CCAI_TVM_TVM_HH

#include <functional>
#include <vector>

#include "pcie/memory_map.hh"
#include "pcie/root_complex.hh"

namespace ccai::tvm
{

/**
 * CPU-side timing parameters of the TVM.
 */
struct TvmTiming
{
    /** Private<->shared memory copy bandwidth (bytes/s). */
    double memcpyBytesPerSec = 12.0e9;
    /** Cost of fielding one interrupt. */
    Tick interruptOverhead = 2 * kTicksPerUs;
};

/**
 * The TVM wraps the root complex with a guest-visible interface:
 * MMIO accessors using the TVM's requester ID, interrupt delivery,
 * and the IOMMU policy for inbound device DMA.
 */
class Tvm : public sim::SimObject
{
  public:
    Tvm(sim::System &sys, std::string name, pcie::RootComplex &rc,
        pcie::Bdf bdf = pcie::wellknown::kTvm,
        const TvmTiming &timing = {});

    pcie::Bdf bdf() const { return bdf_; }
    pcie::RootComplex &rootComplex() { return rc_; }
    pcie::HostMemory &memory() { return rc_.memory(); }
    const TvmTiming &timing() const { return timing_; }

    /** Posted MMIO write of raw bytes. */
    void mmioWrite(Addr addr, Bytes data);

    /** Posted MMIO write of one little-endian 64-bit value. */
    void mmioWrite64(Addr addr, std::uint64_t value);

    /** Non-posted MMIO read; @p cb receives the completion payload. */
    void mmioRead(Addr addr, std::uint32_t length,
                  std::function<void(Bytes)> cb);

    /** Register an interrupt waiter (FIFO order). */
    void waitInterrupt(std::function<void()> cb);

    /**
     * Crash recovery: drop interrupt waiters registered by the dead
     * session, so a replayed operation's MSI is not stolen by a
     * continuation that will never run.
     */
    void clearInterruptWaiters() { irqWaiters_.clear(); }

    /**
     * Install the IOMMU policy: devices may only DMA into the bounce
     * buffers, and the PCIe-SC may write the metadata buffer. When
     * @p secure is false (vanilla system), devices may access all of
     * host DRAM, matching a conventional passthrough configuration.
     */
    void configureIommu(bool secure);

    /** Time to copy @p bytes between private and shared memory. */
    Tick memcpyDelay(std::uint64_t bytes) const;

    void reset() override;

  private:
    void handleMsi(const pcie::TlpPtr &tlp);

    pcie::RootComplex &rc_;
    pcie::Bdf bdf_;
    TvmTiming timing_;
    std::vector<std::function<void()>> irqWaiters_;
};

} // namespace ccai::tvm

#endif // CCAI_TVM_TVM_HH
