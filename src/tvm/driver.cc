#include "driver.hh"

#include "pcie/memory_map.hh"

namespace ccai::tvm
{

namespace mm = pcie::memmap;

XpuDriver::XpuDriver(sim::System &sys, std::string name, Tvm &tvm,
                     Adaptor *adaptor)
    : sim::SimObject(sys, std::move(name)), tvm_(tvm), adaptor_(adaptor)
{
}

void
XpuDriver::mmioWrite(Addr addr, Bytes data)
{
    if (adaptor_)
        adaptor_->writeSigned(addr, std::move(data));
    else
        tvm_.mmioWrite(addr, std::move(data));
}

void
XpuDriver::submitCommand(const xpu::XpuCommand &cmd)
{
    xpu::XpuCommand out = cmd;
    if (out.id == 0)
        out.id = nextCmdId_++;

    std::uint64_t slot_off =
        (nextSlot_++ % kRingSlots) * xpu::kXpuCommandBytes;
    Addr slot = mm::kXpuMmio.base + mm::xpureg::kCmdQueueBase + slot_off;

    mmioWrite(slot, out.serialize());

    Bytes bell(8);
    for (int i = 0; i < 8; ++i)
        bell[i] = static_cast<std::uint8_t>(slot_off >> (8 * i));
    mmioWrite(mm::kXpuMmio.base + mm::xpureg::kDoorbell,
              std::move(bell));
    ++submitted_;
}

void
XpuDriver::fence(std::function<void()> done)
{
    tvm_.waitInterrupt(std::move(done));
    xpu::XpuCommand cmd;
    cmd.type = xpu::XpuCmdType::Fence;
    cmd.msiTarget = tvm_.bdf().raw(); // steer the MSI at this tenant
    submitCommand(cmd);
}

void
XpuDriver::reset()
{
    nextSlot_ = 0;
    nextCmdId_ = 1;
    submitted_ = 0;
}

} // namespace ccai::tvm
