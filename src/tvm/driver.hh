/**
 * @file
 * Native xPU driver model. This stands in for the unmodified vendor
 * driver stack (NVIDIA driver, ttkmd, Enflame driver, ...): it
 * submits command descriptors to the device ring via MMIO, rings the
 * doorbell, and waits for MSIs. ccAI never modifies this layer; in
 * secure mode the Adaptor signs the driver's MMIO writes on their
 * way out (a kernel-level interposition, invisible to the driver
 * logic itself).
 */

#ifndef CCAI_TVM_DRIVER_HH
#define CCAI_TVM_DRIVER_HH

#include "tvm/adaptor.hh"
#include "tvm/tvm.hh"
#include "xpu/xpu_command.hh"

namespace ccai::tvm
{

/**
 * The driver: command submission and synchronization.
 */
class XpuDriver : public sim::SimObject
{
  public:
    XpuDriver(sim::System &sys, std::string name, Tvm &tvm,
              Adaptor *adaptor = nullptr);

    /**
     * Submit one command: writes the 64-byte descriptor into a ring
     * slot and rings the doorbell. With an Adaptor attached both
     * writes carry A3 integrity tags.
     */
    void submitCommand(const xpu::XpuCommand &cmd);

    /** Submit a fence and invoke @p done when its MSI arrives. */
    void fence(std::function<void()> done);

    /** Number of ring slots. */
    static constexpr std::uint64_t kRingSlots = 64;

    std::uint64_t submitted() const { return submitted_; }

    void reset() override;

  private:
    void mmioWrite(Addr addr, Bytes data);

    Tvm &tvm_;
    Adaptor *adaptor_;
    std::uint64_t nextSlot_ = 0;
    std::uint64_t nextCmdId_ = 1;
    std::uint64_t submitted_ = 0;
};

} // namespace ccai::tvm

#endif // CCAI_TVM_DRIVER_HH
