/**
 * @file
 * ccrt — the user-level runtime API xPU applications program
 * against (the CUDA-like layer). Applications written against ccrt
 * run unchanged on a vanilla system and under ccAI: user
 * transparency is the point of the paper's design, and this API is
 * where the repo demonstrates it. In secure mode the runtime routes
 * data movement through the Adaptor's bounce-buffer path; in vanilla
 * mode the device DMAs application memory directly.
 */

#ifndef CCAI_TVM_RUNTIME_HH
#define CCAI_TVM_RUNTIME_HH

#include <optional>

#include "tvm/driver.hh"

namespace ccai::backend
{
class ProtectionBackend;
} // namespace ccai::backend

namespace ccai::tvm
{

/** Execution mode of the runtime. */
enum class RuntimeMode
{
    Vanilla, ///< no PCIe-SC in the path, plaintext DMA
    Secure,  ///< ccAI: Adaptor + PCIe-SC protection
};

/** What kind of payload a transfer carries. */
enum class TransferKind
{
    /** User data/results: Adaptor en/decrypts on the TVM side. */
    Sensitive,
    /**
     * KV-cache swap traffic: encrypted/decrypted by the PCIe-SC at
     * line rate and never visible to the TVM in plaintext; the
     * Adaptor only tracks chunk records.
     */
    KvSwap,
};

/**
 * The runtime object an application binds to one device.
 */
class Runtime : public sim::SimObject
{
  public:
    using DoneCb = std::function<void()>;
    using DataCb = std::function<void(Bytes)>;

    Runtime(sim::System &sys, std::string name, Tvm &tvm,
            XpuDriver &driver, RuntimeMode mode,
            Adaptor *adaptor = nullptr);

    RuntimeMode mode() const { return mode_; }

    /**
     * Attach a cost-modelled protection backend (H100-CC / ACAI
     * rivals). A Vanilla-mode runtime with a backend attached
     * charges the backend's host seal/open rates, per-transfer and
     * per-request setup, and compute-overhead factor on top of the
     * plain data path. nullptr (the default) charges nothing; the
     * ccai backend's costs come from the simulated PCIe-SC instead.
     */
    void setProtection(const backend::ProtectionBackend *b)
    {
        protection_ = b;
    }
    const backend::ProtectionBackend *protection() const
    {
        return protection_;
    }

    /**
     * Copy host data to device memory (synchronous semantics: @p
     * done fires once the device holds the data). Passing
     * std::nullopt models a bulk transfer of @p length bytes with no
     * materialized payload.
     */
    void memcpyH2D(Addr devAddr, std::optional<Bytes> data,
                   std::uint64_t length, DoneCb done,
                   TransferKind kind = TransferKind::Sensitive);

    /**
     * Copy device memory back to the host. For synthetic transfers
     * the callback receives an empty buffer.
     */
    void memcpyD2H(Addr devAddr, std::uint64_t length, bool synthetic,
                   DataCb done,
                   TransferKind kind = TransferKind::Sensitive);

    /**
     * Per-request setup: in secure mode the Adaptor re-installs the
     * packet policy covering this request's bounce windows; in
     * vanilla mode this completes immediately.
     */
    void beginRequest(DoneCb done);

    /** Enqueue a compute kernel of the given modelled duration. */
    void launchKernel(Tick duration);

    /** Block until all queued work retired. */
    void synchronize(DoneCb done);

    /** Total H2D/D2H bytes moved (stats). */
    std::uint64_t bytesH2d() const { return bytesH2d_; }
    std::uint64_t bytesD2h() const { return bytesD2h_; }

    void reset() override;

  private:
    Addr allocStaging(std::uint64_t length);
    /**
     * DMA burst override for secure transfers: device bursts are
     * clamped to the Adaptor's chunk size so every burst maps onto
     * exactly one A2 chunk record at the PCIe-SC (0 in vanilla mode
     * leaves the device default).
     */
    std::uint32_t secureBurstBytes() const;
    void h2dPiece(Addr devAddr, std::optional<Bytes> data,
                  std::uint64_t offset, std::uint64_t total,
                  TransferKind kind, DoneCb done);
    void memcpyH2DPiece(Addr devAddr, std::optional<Bytes> data,
                        std::uint64_t length, DoneCb done,
                        TransferKind kind);
    void memcpyD2HPiece(Addr devAddr, std::uint64_t length,
                        bool synthetic, DataCb done,
                        TransferKind kind);
    void d2hPiece(Addr devAddr, std::uint64_t offset,
                  std::uint64_t total, bool synthetic,
                  TransferKind kind, std::shared_ptr<Bytes> acc,
                  DataCb done);

    /**
     * Transfers larger than this are split into sequential pieces
     * so each fits comfortably inside the bounce windows.
     */
    static constexpr std::uint64_t kMaxPieceBytes = 256 * kMiB;

    Tvm &tvm_;
    XpuDriver &driver_;
    RuntimeMode mode_;
    Adaptor *adaptor_;
    const backend::ProtectionBackend *protection_ = nullptr;
    Addr stagingCursor_ = 0;
    std::uint64_t bytesH2d_ = 0;
    std::uint64_t bytesD2h_ = 0;
};

} // namespace ccai::tvm

#endif // CCAI_TVM_RUNTIME_HH
