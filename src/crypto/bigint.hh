/**
 * @file
 * Minimal arbitrary-precision unsigned integer used by the trust
 * establishment protocols (Diffie-Hellman key exchange and
 * Schnorr-style attestation signatures). Supports the handful of
 * operations modular exponentiation needs.
 */

#ifndef CCAI_CRYPTO_BIGINT_HH
#define CCAI_CRYPTO_BIGINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace ccai::crypto
{

/**
 * Unsigned big integer, little-endian limbs of 32 bits. Not
 * performance-tuned; group sizes in the simulation are 256 bits so
 * schoolbook algorithms are ample.
 */
class BigInt
{
  public:
    BigInt() = default;
    BigInt(std::uint64_t v);

    /** Parse big-endian bytes. */
    static BigInt fromBytes(const Bytes &be);

    /** Parse a hex string (big-endian). */
    static BigInt fromHexString(const std::string &hex);

    /** Serialize to big-endian bytes, optionally zero-padded. */
    Bytes toBytes(size_t pad_to = 0) const;

    std::string toHexString() const;

    bool isZero() const { return limbs_.empty(); }
    size_t bitLength() const;
    bool bit(size_t i) const;

    bool operator==(const BigInt &o) const { return limbs_ == o.limbs_; }
    bool operator!=(const BigInt &o) const { return !(*this == o); }
    bool operator<(const BigInt &o) const { return cmp(o) < 0; }
    bool operator<=(const BigInt &o) const { return cmp(o) <= 0; }
    bool operator>(const BigInt &o) const { return cmp(o) > 0; }
    bool operator>=(const BigInt &o) const { return cmp(o) >= 0; }

    BigInt operator+(const BigInt &o) const;
    /** Subtraction; requires *this >= o. */
    BigInt operator-(const BigInt &o) const;
    BigInt operator*(const BigInt &o) const;
    BigInt operator%(const BigInt &m) const;

    /** (this + o) mod m */
    BigInt addMod(const BigInt &o, const BigInt &m) const;
    /** (this * o) mod m */
    BigInt mulMod(const BigInt &o, const BigInt &m) const;
    /** this^e mod m via square-and-multiply. */
    BigInt powMod(const BigInt &e, const BigInt &m) const;

  private:
    int cmp(const BigInt &o) const;
    void trim();

    std::vector<std::uint32_t> limbs_; ///< little-endian, no leading 0s
};

} // namespace ccai::crypto

#endif // CCAI_CRYPTO_BIGINT_HH
