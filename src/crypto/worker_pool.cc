#include "worker_pool.hh"

#include <algorithm>

namespace ccai::crypto
{

int
WorkerPool::defaultWorkerCount()
{
    unsigned hc = std::thread::hardware_concurrency();
    // Even on a single-core host keep a couple of real workers: the
    // pool's value there is exercising the concurrent code paths
    // (and TSan), not speedup. The ceiling tracks the widest sharded
    // data-plane configuration (16 lanes).
    return std::clamp<int>(static_cast<int>(hc), 2, 16);
}

WorkerPool::WorkerPool(int maxWorkers)
    : maxWorkers_(std::max(1, maxWorkers))
{
    workers_.reserve(static_cast<std::size_t>(maxWorkers_));
    for (int i = 0; i < maxWorkers_; ++i)
        workers_.push_back(std::make_unique<Worker>());
}

WorkerPool::~WorkerPool()
{
    stopping_.store(true, std::memory_order_relaxed);
    for (auto &w : workers_) {
        {
            std::lock_guard<std::mutex> lock(w->mutex);
        }
        w->cv.notify_all();
        if (w->started)
            w->thread.join();
    }
}

int
WorkerPool::spawnedWorkers() const
{
    int n = 0;
    for (const auto &w : workers_)
        n += w->started ? 1 : 0;
    return n;
}

void
WorkerPool::ensureWorker(std::size_t index)
{
    Worker &w = *workers_[index];
    if (!w.started) {
        w.started = true;
        w.thread = std::thread([this, &w] { workerLoop(w); });
    }
}

void
WorkerPool::workerLoop(Worker &w)
{
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(w.mutex);
            w.cv.wait(lock, [&] {
                return !w.ring.empty() ||
                       stopping_.load(std::memory_order_relaxed);
            });
            if (w.ring.empty())
                return; // stopping
            task = w.ring.front();
            w.ring.erase(w.ring.begin());
            w.queueWaitNs.sample(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - task.enqueued)
                    .count()));
        }
        if (task.jobs != nullptr) {
            // runJobs lane: claim from the shared submission cursor
            // until it runs dry, then retire the lane.
            JobBatch &jobs = *task.jobs;
            jobLane(jobs);
            workerRanges_.fetch_add(1, std::memory_order_relaxed);
            if (jobs.pendingLanes.fetch_sub(
                    1, std::memory_order_acq_rel) == 1) {
                std::lock_guard<std::mutex> lock(jobs.doneMutex);
                jobs.doneCv.notify_all();
            }
            continue;
        }
        runRange(task);
        workerRanges_.fetch_add(1, std::memory_order_relaxed);
        Batch &batch = *task.batch;
        if (batch.pendingRanges.fetch_sub(
                1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lock(batch.doneMutex);
            batch.doneCv.notify_all();
        }
    }
}

void
WorkerPool::jobLane(JobBatch &jobs)
{
    for (;;) {
        std::size_t i =
            jobs.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= jobs.n)
            return;
        (*jobs.fn)(i);
        jobsExecuted_.fetch_add(1, std::memory_order_relaxed);
        // The ring is sized >= n, so a push can only transiently
        // fail while another producer is mid-publish.
        while (!jobs.completions->tryPush(i))
            std::this_thread::yield();
    }
}

void
WorkerPool::runRange(const Task &task)
{
    for (std::size_t i = task.begin; i < task.end; ++i)
        (*task.batch->fn)(i);
}

void
WorkerPool::parallelFor(std::size_t n, int width,
                        const std::function<void(std::size_t)> &fn)
{
    std::size_t lanes = static_cast<std::size_t>(std::max(1, width));
    lanes = std::min(lanes, n);
    if (lanes <= 1) {
        ++inlineBatches_;
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    ++parallelBatches_;
    Batch batch;
    batch.fn = &fn;
    batch.pendingRanges.store(lanes - 1, std::memory_order_relaxed);

    // Contiguous split; lane 0 stays on the caller. Lane k always
    // maps to ring (k-1) % workers so the decomposition — and with
    // it every per-index result — is a pure function of (n, width).
    std::vector<Task> mine;
    for (std::size_t k = 0; k < lanes; ++k) {
        Task task;
        task.batch = &batch;
        task.begin = n * k / lanes;
        task.end = n * (k + 1) / lanes;
        if (k == 0) {
            mine.push_back(task);
            continue;
        }
        std::size_t widx =
            (k - 1) % static_cast<std::size_t>(maxWorkers_);
        ensureWorker(widx);
        Worker &w = *workers_[widx];
        {
            std::lock_guard<std::mutex> lock(w.mutex);
            task.enqueued = std::chrono::steady_clock::now();
            w.ring.push_back(task);
        }
        w.cv.notify_one();
    }

    runRange(mine.front());

    std::unique_lock<std::mutex> lock(batch.doneMutex);
    batch.doneCv.wait(lock, [&] {
        return batch.pendingRanges.load(std::memory_order_acquire) ==
               0;
    });
}

void
WorkerPool::runJobs(std::size_t n, int width,
                    const std::function<void(std::size_t)> &fn,
                    const std::function<void(std::size_t)> &commit)
{
    std::size_t lanes = static_cast<std::size_t>(std::max(1, width));
    lanes = std::min(lanes, n);
    if (lanes <= 1) {
        ++inlineBatches_;
        for (std::size_t i = 0; i < n; ++i) {
            fn(i);
            commit(i);
        }
        return;
    }

    ++jobBatches_;
    MpmcRing<std::size_t> completions(n);
    JobBatch jobs;
    jobs.fn = &fn;
    jobs.n = n;
    jobs.completions = &completions;

    // Caller is one lane; the rest go to the worker rings. Lane
    // placement only affects wall-clock scheduling: job claim order
    // comes off one shared cursor and commit order is forced below,
    // so results are a pure function of n — not of width or timing.
    std::size_t workerLanes =
        std::min(lanes - 1, static_cast<std::size_t>(maxWorkers_));
    jobs.pendingLanes.store(workerLanes, std::memory_order_relaxed);
    for (std::size_t k = 0; k < workerLanes; ++k) {
        ensureWorker(k);
        Worker &w = *workers_[k];
        Task task;
        task.jobs = &jobs;
        {
            std::lock_guard<std::mutex> lock(w.mutex);
            task.enqueued = std::chrono::steady_clock::now();
            w.ring.push_back(task);
        }
        w.cv.notify_one();
    }

    // Caller lane: interleave claiming jobs with reaping and ordered
    // commit, so the serial stage overlaps the parallel one instead
    // of waiting behind a barrier.
    std::vector<bool> done(n, false);
    std::size_t nextCommit = 0;
    auto reap = [&] {
        std::size_t drained = 0;
        std::size_t idx;
        while (completions.tryPop(idx)) {
            done[idx] = true;
            ++drained;
        }
        if (drained > 0)
            ringOccupancy_.sample(drained);
        while (nextCommit < n && done[nextCommit])
            commit(nextCommit++);
    };

    for (;;) {
        std::size_t i =
            jobs.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= jobs.n)
            break;
        fn(i);
        jobsExecuted_.fetch_add(1, std::memory_order_relaxed);
        while (!completions.tryPush(i))
            std::this_thread::yield();
        reap();
    }
    while (nextCommit < n) {
        reap();
        if (nextCommit < n)
            std::this_thread::yield();
    }

    // Workers may still be between their last push and retiring the
    // lane; they touch the batch until pendingLanes hits zero, so
    // the stack frame must not unwind before that.
    if (workerLanes > 0) {
        std::unique_lock<std::mutex> lock(jobs.doneMutex);
        jobs.doneCv.wait(lock, [&] {
            return jobs.pendingLanes.load(
                       std::memory_order_acquire) == 0;
        });
    }
    completionHighWater_ =
        std::max(completionHighWater_, completions.highWatermark());
}

obs::Histogram
WorkerPool::queueWaitHistogram() const
{
    obs::Histogram merged;
    for (const auto &w : workers_) {
        std::lock_guard<std::mutex> lock(w->mutex);
        merged.merge(w->queueWaitNs);
    }
    return merged;
}

void
WorkerPool::resetStats()
{
    parallelBatches_ = 0;
    inlineBatches_ = 0;
    workerRanges_ = 0;
    jobBatches_ = 0;
    jobsExecuted_ = 0;
    completionHighWater_ = 0;
    ringOccupancy_.reset();
    for (const auto &w : workers_) {
        std::lock_guard<std::mutex> lock(w->mutex);
        w->queueWaitNs.reset();
    }
}

WorkerPool &
WorkerPool::shared()
{
    static WorkerPool pool;
    return pool;
}

} // namespace ccai::crypto
