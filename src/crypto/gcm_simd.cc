#include "gcm_simd.hh"

#include <cstring>

#include "cpu_features.hh"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace ccai::crypto
{

#if defined(__x86_64__)

// Each kernel carries its own target attribute so this TU compiles
// with baseline flags; gcmSimd* entry points are only reached when
// the cpuid probe says the ISA is present.
#define CCAI_TGT_BASE __attribute__((target("aes,pclmul,ssse3,sse4.1")))
#define CCAI_TGT_WIDE \
    __attribute__((target("vaes,avx2,aes,pclmul,ssse3,sse4.1")))

namespace
{

/** dst[i] = src[15-i]: block bytes <-> GHASH bit-reflected lanes. */
CCAI_TGT_BASE inline __m128i
bswapMask()
{
    return _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                        14, 15);
}

/**
 * (lo, hi) ^= a * b as a raw 256-bit carry-less product (Karatsuba-
 * free four-multiply form). Deferring the shift/reduce lets 4-block
 * aggregation pay one reduction per 64 bytes.
 */
CCAI_TGT_BASE inline void
clmulAcc(__m128i a, __m128i b, __m128i &lo, __m128i &hi)
{
    __m128i t0 = _mm_clmulepi64_si128(a, b, 0x00);
    __m128i t1 = _mm_clmulepi64_si128(a, b, 0x10);
    __m128i t2 = _mm_clmulepi64_si128(a, b, 0x01);
    __m128i t3 = _mm_clmulepi64_si128(a, b, 0x11);
    __m128i mid = _mm_xor_si128(t1, t2);
    lo = _mm_xor_si128(lo,
                       _mm_xor_si128(t0, _mm_slli_si128(mid, 8)));
    hi = _mm_xor_si128(hi,
                       _mm_xor_si128(t3, _mm_srli_si128(mid, 8)));
}

/**
 * Finish a GHASH multiply: shift the 256-bit product left one bit
 * (the bit-reflection adjustment from the Intel CLMUL white paper)
 * and reduce mod x^128 + x^7 + x^2 + x + 1.
 */
CCAI_TGT_BASE inline __m128i
ghashReduce(__m128i lo, __m128i hi)
{
    // 256-bit shift left by 1: per-dword shifts with carries marched
    // up one lane, the top carry of lo crossing into hi.
    __m128i cLo = _mm_srli_epi32(lo, 31);
    __m128i cHi = _mm_srli_epi32(hi, 31);
    lo = _mm_slli_epi32(lo, 1);
    hi = _mm_slli_epi32(hi, 1);
    __m128i cross = _mm_srli_si128(cLo, 12);
    lo = _mm_or_si128(lo, _mm_slli_si128(cLo, 4));
    hi = _mm_or_si128(hi, _mm_slli_si128(cHi, 4));
    hi = _mm_or_si128(hi, cross);

    // Phase 1: fold x^31/x^30/x^25 terms of the low half upward.
    __m128i t = _mm_xor_si128(
        _mm_slli_epi32(lo, 31),
        _mm_xor_si128(_mm_slli_epi32(lo, 30), _mm_slli_epi32(lo, 25)));
    __m128i tHi = _mm_srli_si128(t, 4);
    lo = _mm_xor_si128(lo, _mm_slli_si128(t, 12));
    // Phase 2: x^-1/x^-2/x^-7 folds complete the reduction.
    __m128i r = _mm_xor_si128(
        _mm_srli_epi32(lo, 1),
        _mm_xor_si128(_mm_srli_epi32(lo, 2), _mm_srli_epi32(lo, 7)));
    r = _mm_xor_si128(r, tHi);
    lo = _mm_xor_si128(lo, r);
    return _mm_xor_si128(hi, lo);
}

/** Full GHASH field multiply of byte-reflected operands. */
CCAI_TGT_BASE inline __m128i
gfmul(__m128i a, __m128i b)
{
    __m128i lo = _mm_setzero_si128();
    __m128i hi = _mm_setzero_si128();
    clmulAcc(a, b, lo, hi);
    return ghashReduce(lo, hi);
}

CCAI_TGT_BASE void
initHPowers(GcmSimdCtx &ctx, std::uint64_t hHigh, std::uint64_t hLow)
{
    const __m128i h1 = _mm_set_epi64x(
        static_cast<long long>(hHigh), static_cast<long long>(hLow));
    __m128i p = h1;
    _mm_store_si128(reinterpret_cast<__m128i *>(ctx.hPow[0]), p);
    for (int i = 1; i < 4; ++i) {
        p = gfmul(p, h1);
        _mm_store_si128(reinterpret_cast<__m128i *>(ctx.hPow[i]), p);
    }
}

/** Counter block: iv (lanes 0..2 of @p base) || be32(counter). */
CCAI_TGT_BASE inline __m128i
ctrBlock(__m128i base, std::uint32_t counter)
{
    return _mm_insert_epi32(
        base, static_cast<int>(__builtin_bswap32(counter)), 3);
}

CCAI_TGT_BASE inline __m128i
encryptOne(const __m128i *rk, int rounds, __m128i b)
{
    b = _mm_xor_si128(b, rk[0]);
    for (int r = 1; r < rounds; ++r)
        b = _mm_aesenc_si128(b, rk[r]);
    return _mm_aesenclast_si128(b, rk[rounds]);
}

CCAI_TGT_BASE void
ctrXor128(const GcmSimdCtx &ctx, const std::uint8_t iv[12],
          std::uint32_t counter, std::uint8_t *data, size_t len)
{
    __m128i rk[15];
    for (int r = 0; r <= ctx.rounds; ++r)
        rk[r] = _mm_load_si128(
            reinterpret_cast<const __m128i *>(ctx.roundKeys[r]));
    alignas(16) std::uint8_t baseBytes[16] = {};
    std::memcpy(baseBytes, iv, 12);
    const __m128i base =
        _mm_load_si128(reinterpret_cast<const __m128i *>(baseBytes));

    // 8-block interleave keeps the AES units' pipelines full.
    while (len >= 8 * 16) {
        __m128i b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = _mm_xor_si128(ctrBlock(base, counter + i), rk[0]);
        for (int r = 1; r < ctx.rounds; ++r)
            for (int i = 0; i < 8; ++i)
                b[i] = _mm_aesenc_si128(b[i], rk[r]);
        for (int i = 0; i < 8; ++i)
            b[i] = _mm_aesenclast_si128(b[i], rk[ctx.rounds]);
        for (int i = 0; i < 8; ++i) {
            __m128i *p = reinterpret_cast<__m128i *>(data + 16 * i);
            _mm_storeu_si128(
                p, _mm_xor_si128(_mm_loadu_si128(p), b[i]));
        }
        counter += 8;
        data += 8 * 16;
        len -= 8 * 16;
    }
    while (len > 0) {
        __m128i ks =
            encryptOne(rk, ctx.rounds, ctrBlock(base, counter++));
        if (len >= 16) {
            __m128i *p = reinterpret_cast<__m128i *>(data);
            _mm_storeu_si128(p,
                             _mm_xor_si128(_mm_loadu_si128(p), ks));
            data += 16;
            len -= 16;
        } else {
            alignas(16) std::uint8_t tail[16];
            _mm_store_si128(reinterpret_cast<__m128i *>(tail), ks);
            for (size_t j = 0; j < len; ++j)
                data[j] ^= tail[j];
            len = 0;
        }
    }
}

/** VAES tier: two counter blocks per 256-bit lane pair. */
CCAI_TGT_WIDE void
ctrXorWide(const GcmSimdCtx &ctx, const std::uint8_t iv[12],
           std::uint32_t counter, std::uint8_t *data, size_t len)
{
    __m256i rk2[15];
    for (int r = 0; r <= ctx.rounds; ++r)
        rk2[r] = _mm256_broadcastsi128_si256(_mm_load_si128(
            reinterpret_cast<const __m128i *>(ctx.roundKeys[r])));
    alignas(16) std::uint8_t baseBytes[16] = {};
    std::memcpy(baseBytes, iv, 12);
    const __m128i base =
        _mm_load_si128(reinterpret_cast<const __m128i *>(baseBytes));

    while (len >= 8 * 16) {
        __m256i b[4];
        for (int j = 0; j < 4; ++j) {
            __m256i cb = _mm256_set_m128i(
                ctrBlock(base, counter + 2 * j + 1),
                ctrBlock(base, counter + 2 * j));
            b[j] = _mm256_xor_si256(cb, rk2[0]);
        }
        for (int r = 1; r < ctx.rounds; ++r)
            for (int j = 0; j < 4; ++j)
                b[j] = _mm256_aesenc_epi128(b[j], rk2[r]);
        for (int j = 0; j < 4; ++j)
            b[j] = _mm256_aesenclast_epi128(b[j], rk2[ctx.rounds]);
        for (int j = 0; j < 4; ++j) {
            __m256i *p = reinterpret_cast<__m256i *>(data + 32 * j);
            _mm256_storeu_si256(
                p, _mm256_xor_si256(_mm256_loadu_si256(p), b[j]));
        }
        counter += 8;
        data += 8 * 16;
        len -= 8 * 16;
    }
    if (len > 0)
        ctrXor128(ctx, iv, counter, data, len);
}

CCAI_TGT_BASE void
ghashBlocks(const GcmSimdCtx &ctx, std::uint64_t &yh, std::uint64_t &yl,
            const std::uint8_t *data, size_t nblocks)
{
    const __m128i bs = bswapMask();
    __m128i y = _mm_set_epi64x(static_cast<long long>(yh),
                               static_cast<long long>(yl));
    const __m128i h1 = _mm_load_si128(
        reinterpret_cast<const __m128i *>(ctx.hPow[0]));
    const __m128i h2 = _mm_load_si128(
        reinterpret_cast<const __m128i *>(ctx.hPow[1]));
    const __m128i h3 = _mm_load_si128(
        reinterpret_cast<const __m128i *>(ctx.hPow[2]));
    const __m128i h4 = _mm_load_si128(
        reinterpret_cast<const __m128i *>(ctx.hPow[3]));

    // 4-block aggregation with one deferred reduction:
    // Y' = (Y^X1)*H^4 ^ X2*H^3 ^ X3*H^2 ^ X4*H.
    while (nblocks >= 4) {
        __m128i x0 = _mm_shuffle_epi8(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(data)),
            bs);
        __m128i x1 = _mm_shuffle_epi8(
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(data + 16)),
            bs);
        __m128i x2 = _mm_shuffle_epi8(
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(data + 32)),
            bs);
        __m128i x3 = _mm_shuffle_epi8(
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(data + 48)),
            bs);
        __m128i lo = _mm_setzero_si128();
        __m128i hi = _mm_setzero_si128();
        clmulAcc(_mm_xor_si128(y, x0), h4, lo, hi);
        clmulAcc(x1, h3, lo, hi);
        clmulAcc(x2, h2, lo, hi);
        clmulAcc(x3, h1, lo, hi);
        y = ghashReduce(lo, hi);
        data += 4 * 16;
        nblocks -= 4;
    }
    while (nblocks > 0) {
        __m128i x = _mm_shuffle_epi8(
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(data)),
            bs);
        y = gfmul(_mm_xor_si128(y, x), h1);
        data += 16;
        --nblocks;
    }
    yh = static_cast<std::uint64_t>(_mm_extract_epi64(y, 1));
    yl = static_cast<std::uint64_t>(_mm_extract_epi64(y, 0));
}

} // namespace

void
gcmSimdInit(GcmSimdCtx &ctx, const std::uint32_t *rkWords, int rounds,
            std::uint64_t hHigh, std::uint64_t hLow)
{
    ctx.ready = false;
    ctx.wide = false;
    SimdTier tier = simdTier();
    if (tier == SimdTier::kNone)
        return;
    ctx.rounds = rounds;
    // BE round-key words -> the byte layout AES-NI expects.
    for (int r = 0; r <= rounds; ++r) {
        for (int c = 0; c < 4; ++c) {
            std::uint32_t w = rkWords[4 * r + c];
            ctx.roundKeys[r][4 * c + 0] =
                static_cast<std::uint8_t>(w >> 24);
            ctx.roundKeys[r][4 * c + 1] =
                static_cast<std::uint8_t>(w >> 16);
            ctx.roundKeys[r][4 * c + 2] =
                static_cast<std::uint8_t>(w >> 8);
            ctx.roundKeys[r][4 * c + 3] = static_cast<std::uint8_t>(w);
        }
    }
    initHPowers(ctx, hHigh, hLow);
    ctx.ready = true;
    ctx.wide = tier == SimdTier::kVaes;
}

void
gcmSimdCtrXor(const GcmSimdCtx &ctx, const std::uint8_t iv[12],
              std::uint32_t counter, std::uint8_t *data, size_t len)
{
    if (ctx.wide && len >= 8 * 16)
        ctrXorWide(ctx, iv, counter, data, len);
    else
        ctrXor128(ctx, iv, counter, data, len);
}

void
gcmSimdGhash(const GcmSimdCtx &ctx, std::uint64_t &yh,
             std::uint64_t &yl, const std::uint8_t *data,
             size_t nblocks)
{
    ghashBlocks(ctx, yh, yl, data, nblocks);
}

#else // !__x86_64__

void
gcmSimdInit(GcmSimdCtx &ctx, const std::uint32_t *, int, std::uint64_t,
            std::uint64_t)
{
    ctx.ready = false;
    ctx.wide = false;
}

void
gcmSimdCtrXor(const GcmSimdCtx &, const std::uint8_t *, std::uint32_t,
              std::uint8_t *, size_t)
{
}

void
gcmSimdGhash(const GcmSimdCtx &, std::uint64_t &, std::uint64_t &,
             const std::uint8_t *, size_t)
{
}

#endif

} // namespace ccai::crypto
