#include "cpu_features.hh"

#include <atomic>
#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

// Older cpuid.h headers miss the leaf-7 ECX crypto bits.
#ifndef bit_VAES
#define bit_VAES (1 << 9)
#endif
#ifndef bit_VPCLMULQDQ
#define bit_VPCLMULQDQ (1 << 10)
#endif

namespace ccai::crypto
{

namespace
{

CpuFeatures
probe()
{
    CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx))
        return f;
    f.ssse3 = (ecx & bit_SSSE3) != 0;
    f.sse41 = (ecx & bit_SSE4_1) != 0;
    f.aesni = (ecx & bit_AES) != 0;
    f.pclmul = (ecx & bit_PCLMUL) != 0;

    // The 256-bit tier needs the OS to context-switch YMM state:
    // OSXSAVE set and XCR0 enabling both XMM and YMM saves.
    bool ymmOs = false;
    if (ecx & bit_OSXSAVE) {
        unsigned lo, hi;
        __asm__ volatile(".byte 0x0f, 0x01, 0xd0" // xgetbv
                         : "=a"(lo), "=d"(hi)
                         : "c"(0));
        ymmOs = (lo & 0x6) == 0x6;
    }
    unsigned eax7 = 0, ebx7 = 0, ecx7 = 0, edx7 = 0;
    if (__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7)) {
        f.avx2 = ymmOs && (ebx7 & bit_AVX2) != 0;
        f.vaes = ymmOs && (ecx7 & bit_VAES) != 0;
        f.vpclmulqdq = ymmOs && (ecx7 & bit_VPCLMULQDQ) != 0;
    }
#endif
    return f;
}

std::atomic<int> overrideTier{-1};

} // namespace

const CpuFeatures &
cpuFeatures()
{
    static const CpuFeatures f = probe();
    return f;
}

SimdTier
simdTier()
{
    int forced = overrideTier.load(std::memory_order_relaxed);
    if (forced >= 0)
        return static_cast<SimdTier>(forced);
    static const SimdTier probed = [] {
        const char *env = std::getenv("CCAI_NO_SIMD");
        if (env && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0'))
            return SimdTier::kNone;
        const CpuFeatures &f = cpuFeatures();
        if (!(f.aesni && f.pclmul && f.sse41 && f.ssse3))
            return SimdTier::kNone;
        if (f.vaes && f.avx2)
            return SimdTier::kVaes;
        return SimdTier::kAesniClmul;
    }();
    return probed;
}

void
overrideSimdTierForTest(int tier)
{
    overrideTier.store(tier, std::memory_order_relaxed);
}

const char *
simdTierName(SimdTier tier)
{
    switch (tier) {
      case SimdTier::kNone:
        return "table";
      case SimdTier::kAesniClmul:
        return "aesni-clmul";
      case SimdTier::kVaes:
        return "vaes";
    }
    return "unknown";
}

} // namespace ccai::crypto
