#include "dh.hh"

#include "common/bytes_util.hh"
#include "common/logging.hh"
#include "crypto/sha256.hh"

namespace ccai::crypto
{

const DhGroup &
DhGroup::standard()
{
    // p = 2^256 - 189, the largest 256-bit prime; g = 2 generates a
    // large subgroup. Fixed for reproducibility.
    static const DhGroup group = [] {
        DhGroup g;
        g.p = BigInt::fromHexString(
            "ffffffffffffffffffffffffffffffff"
            "ffffffffffffffffffffffffffffff43");
        g.g = BigInt(2);
        return g;
    }();
    return group;
}

KeyPair
generateKeyPair(sim::Rng &rng, const DhGroup &group)
{
    KeyPair kp;
    Bytes priv_bytes = rng.bytes(31); // < p by construction
    kp.priv = BigInt::fromBytes(priv_bytes);
    if (kp.priv.isZero())
        kp.priv = BigInt(3);
    kp.pub = group.g.powMod(kp.priv, group.p);
    return kp;
}

Bytes
computeSharedSecret(const BigInt &priv, const BigInt &peer_pub,
                    const DhGroup &group)
{
    BigInt shared = peer_pub.powMod(priv, group.p);
    // Hash the raw group element so the secret is uniform.
    return Sha256::digest(shared.toBytes(32));
}

Bytes
Signature::serialize() const
{
    Bytes out = r.toBytes(32);
    Bytes s_bytes = s.toBytes(32);
    out.insert(out.end(), s_bytes.begin(), s_bytes.end());
    return out;
}

Signature
Signature::deserialize(const Bytes &data)
{
    if (data.size() != 64)
        fatal("Signature::deserialize: expected 64 bytes, got %zu",
              data.size());
    Signature sig;
    sig.r = BigInt::fromBytes(Bytes(data.begin(), data.begin() + 32));
    sig.s = BigInt::fromBytes(Bytes(data.begin() + 32, data.end()));
    return sig;
}

namespace
{

/** Challenge e = H(r_bytes || message) reduced mod (p - 1). */
BigInt
challenge(const BigInt &r, const Bytes &message, const DhGroup &group)
{
    Bytes input = r.toBytes(32);
    input.insert(input.end(), message.begin(), message.end());
    BigInt e = BigInt::fromBytes(Sha256::digest(input));
    return e % (group.p - BigInt(1));
}

} // namespace

Signature
sign(const BigInt &priv, const Bytes &message, sim::Rng &rng,
     const DhGroup &group)
{
    const BigInt order = group.p - BigInt(1);
    BigInt k = BigInt::fromBytes(rng.bytes(31));
    if (k.isZero())
        k = BigInt(5);

    Signature sig;
    sig.r = group.g.powMod(k, group.p);
    BigInt e = challenge(sig.r, message, group);
    // s = k + x * e mod (p-1)
    sig.s = k.addMod(priv.mulMod(e, order), order);
    return sig;
}

bool
verify(const BigInt &pub, const Bytes &message, const Signature &sig,
       const DhGroup &group)
{
    // Check g^s == r * pub^e (mod p).
    BigInt e = challenge(sig.r, message, group);
    BigInt lhs = group.g.powMod(sig.s, group.p);
    BigInt rhs = sig.r.mulMod(pub.powMod(e, group.p), group.p);
    return lhs == rhs;
}

} // namespace ccai::crypto
