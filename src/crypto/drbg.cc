#include "drbg.hh"

namespace ccai::crypto
{

Drbg::Drbg(const Bytes &seed, const std::string &personalization)
    : k_(32, 0x00), v_(32, 0x01)
{
    Bytes material = seed;
    material.insert(material.end(), personalization.begin(),
                    personalization.end());
    update(material);
}

void
Drbg::update(const Bytes &provided)
{
    Bytes input = v_;
    input.push_back(0x00);
    input.insert(input.end(), provided.begin(), provided.end());
    k_ = hmacSha256(k_, input);
    v_ = hmacSha256(k_, v_);
    if (!provided.empty()) {
        input = v_;
        input.push_back(0x01);
        input.insert(input.end(), provided.begin(), provided.end());
        k_ = hmacSha256(k_, input);
        v_ = hmacSha256(k_, v_);
    }
}

void
Drbg::reseed(const Bytes &entropy)
{
    update(entropy);
}

Bytes
Drbg::generate(size_t n)
{
    Bytes out;
    while (out.size() < n) {
        v_ = hmacSha256(k_, v_);
        out.insert(out.end(), v_.begin(), v_.end());
    }
    out.resize(n);
    update({});
    return out;
}

Bytes
Drbg::generateIv()
{
    return generate(12);
}

Bytes
Drbg::generateKey128()
{
    return generate(16);
}

Bytes
Drbg::generateKey256()
{
    return generate(32);
}

} // namespace ccai::crypto
