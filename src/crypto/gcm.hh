/**
 * @file
 * AES-GCM authenticated encryption (NIST SP 800-38D) built on the AES
 * block cipher: CTR-mode keystream plus GHASH authentication.
 *
 * This is the algorithm the paper's PCIe-SC AES-GCM-SHA engine and
 * the TVM-side Adaptor both run; having one shared functional
 * implementation lets tests check that what the Adaptor encrypts, the
 * PCIe-SC decrypts bit-exactly (and vice versa for results).
 *
 * The implementation is throughput-oriented (this is the wall-clock
 * hot path of every A2 chunk; simulated time is modelled separately
 * by sc::AesGcmShaEngine / tvm::AdaptorTiming): GHASH runs on a
 * per-key 4-bit Shoup table precomputed at construction, AES rounds
 * are 32-bit T-tables, and the CTR keystream is generated in batches
 * straight from register-held counter words. The span/in-place
 * seal/open entry points let the data-plane engines encrypt and
 * decrypt without round-tripping payloads through extra Bytes
 * copies.
 */

#ifndef CCAI_CRYPTO_GCM_HH
#define CCAI_CRYPTO_GCM_HH

#include <cstdint>
#include <optional>

#include "crypto/aes.hh"
#include "crypto/gcm_simd.hh"

namespace ccai::crypto
{

class WorkerPool;

constexpr size_t kGcmTagSize = 16;
constexpr size_t kGcmIvSize = 12;

/**
 * Payloads shorter than this run serially even when a pool is
 * offered: below it the dispatch overhead exceeds the crypto.
 */
constexpr size_t kGcmParallelMinBytes = 16 * 1024;

/** Output of an AEAD seal operation. */
struct Sealed
{
    Bytes ciphertext;
    Bytes tag; ///< 16-byte authentication tag.
};

/**
 * AES-GCM context bound to one key. The 96-bit IV is supplied per
 * operation; callers (the workload key manager) are responsible for
 * never reusing an IV under the same key.
 */
class AesGcm
{
  public:
    explicit AesGcm(const Bytes &key);

    /**
     * Encrypt and authenticate.
     *
     * @param iv 12-byte initialization vector.
     * @param plaintext data to protect.
     * @param aad additional authenticated (but not encrypted) data;
     *            ccAI binds packet-header attributes here.
     */
    Sealed seal(const Bytes &iv, const Bytes &plaintext,
                const Bytes &aad = {}) const;

    /**
     * Verify and decrypt. Returns std::nullopt when the tag check
     * fails (tampered ciphertext, wrong AAD, or wrong IV).
     */
    std::optional<Bytes> open(const Bytes &iv, const Bytes &ciphertext,
                              const Bytes &tag,
                              const Bytes &aad = {}) const;

    /**
     * In-place seal: encrypts @p data (length @p len) in place and
     * writes the 16-byte tag to @p tag. Equivalent to seal() without
     * the ciphertext copy.
     */
    void sealInPlace(const Bytes &iv, std::uint8_t *data, size_t len,
                     const std::uint8_t *aad, size_t aadLen,
                     std::uint8_t tag[kGcmTagSize]) const;

    /**
     * In-place open: verifies @p tag over the ciphertext in
     * @p data and, on success, decrypts it in place. On failure
     * returns false and leaves @p data untouched (still ciphertext).
     */
    bool openInPlace(const Bytes &iv, std::uint8_t *data, size_t len,
                     const std::uint8_t tag[kGcmTagSize],
                     const std::uint8_t *aad, size_t aadLen) const;

    /**
     * Parallel in-place seal: splits the payload into @p width
     * contiguous block-aligned segments, each lane running CTR at
     * the segment's counter offset plus a segment-local GHASH; the
     * segment hashes are folded exactly (S = sum_k S_k * H^{n-e_k}),
     * so the tag is bit-identical to the serial sealInPlace at any
     * width. Falls back to serial for width <= 1 or short payloads.
     */
    void sealInPlace(const Bytes &iv, std::uint8_t *data, size_t len,
                     const std::uint8_t *aad, size_t aadLen,
                     std::uint8_t tag[kGcmTagSize], WorkerPool &pool,
                     int width) const;

    /** Parallel in-place open; same decomposition and guarantees. */
    bool openInPlace(const Bytes &iv, std::uint8_t *data, size_t len,
                     const std::uint8_t tag[kGcmTagSize],
                     const std::uint8_t *aad, size_t aadLen,
                     WorkerPool &pool, int width) const;

    /** GHASH over aad||ciphertext with length block (exposed for
     * the AuthTagManager's incremental verification tests). */
    Bytes ghash(const Bytes &aad, const Bytes &ciphertext) const;

  private:
    /** XOR the CTR keystream (starting at @p counter) into @p data. */
    void ctrApply(const Bytes &iv, std::uint8_t *data, size_t len,
                  std::uint32_t counter) const;
    /** Absorb @p len bytes (zero-padded to blocks) into the GHASH
     * accumulator held as two big-endian 64-bit halves. */
    void ghashAbsorb(std::uint64_t &yh, std::uint64_t &yl,
                     const std::uint8_t *data, size_t len) const;
    /** Table-driven y <- y * H in GF(2^128). */
    void gmult(std::uint64_t &yh, std::uint64_t &yl) const;
    /** Full GHASH + E_K(J0) tag computation over aad || ct. */
    void computeTag(const Bytes &iv, const std::uint8_t *ct, size_t len,
                    const std::uint8_t *aad, size_t aadLen,
                    std::uint8_t tag[kGcmTagSize]) const;

    /** Lanes a parallel op over @p len bytes should use (1 = run
     * the serial path). */
    static int parallelLanes(size_t len, int width);
    /** Generic z <- x * y in the GHASH field (bit-reflected
     * convention, reduction by 0xe1 << 120). */
    static void gf128Mul(std::uint64_t xh, std::uint64_t xl,
                         std::uint64_t yh, std::uint64_t yl,
                         std::uint64_t &zh, std::uint64_t &zl);
    /** (ph, pl) <- H^t by square-and-multiply. */
    void hPower(std::uint64_t t, std::uint64_t &ph,
                std::uint64_t &pl) const;
    /** Parallel CTR over block-aligned lane ranges. */
    void ctrApplyParallel(const Bytes &iv, std::uint8_t *data,
                          size_t len, WorkerPool &pool,
                          int lanes) const;
    /** Parallel GHASH + E_K(J0) via exact segment folding. */
    void computeTagParallel(const Bytes &iv, const std::uint8_t *ct,
                            size_t len, const std::uint8_t *aad,
                            size_t aadLen,
                            std::uint8_t tag[kGcmTagSize],
                            WorkerPool &pool, int lanes) const;

    Aes aes_;
    /** 4-bit Shoup table for GHASH: hh_[i]/hl_[i] hold the high and
     * low 64-bit halves of (i as a 4-bit coefficient) * H. */
    std::uint64_t hh_[16];
    std::uint64_t hl_[16];
    /** Squaring ladder hp2*_[i] = H^(2^i), so hPower() is popcount
     * multiplies instead of square-and-multiply from scratch. Part
     * of the read-only shared cipher state workers use lock-free. */
    static constexpr int kHPowLadder = 48;
    std::uint64_t hp2h_[kHPowLadder];
    std::uint64_t hp2l_[kHPowLadder];
    /** Runtime-dispatched SIMD kernels (ready=false -> table path). */
    GcmSimdCtx simd_;
};

} // namespace ccai::crypto

#endif // CCAI_CRYPTO_GCM_HH
