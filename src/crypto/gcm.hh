/**
 * @file
 * AES-GCM authenticated encryption (NIST SP 800-38D) built on the AES
 * block cipher: CTR-mode keystream plus GHASH authentication.
 *
 * This is the algorithm the paper's PCIe-SC AES-GCM-SHA engine and
 * the TVM-side Adaptor both run; having one shared functional
 * implementation lets tests check that what the Adaptor encrypts, the
 * PCIe-SC decrypts bit-exactly (and vice versa for results).
 */

#ifndef CCAI_CRYPTO_GCM_HH
#define CCAI_CRYPTO_GCM_HH

#include <cstdint>
#include <optional>

#include "crypto/aes.hh"

namespace ccai::crypto
{

constexpr size_t kGcmTagSize = 16;
constexpr size_t kGcmIvSize = 12;

/** Output of an AEAD seal operation. */
struct Sealed
{
    Bytes ciphertext;
    Bytes tag; ///< 16-byte authentication tag.
};

/**
 * AES-GCM context bound to one key. The 96-bit IV is supplied per
 * operation; callers (the workload key manager) are responsible for
 * never reusing an IV under the same key.
 */
class AesGcm
{
  public:
    explicit AesGcm(const Bytes &key);

    /**
     * Encrypt and authenticate.
     *
     * @param iv 12-byte initialization vector.
     * @param plaintext data to protect.
     * @param aad additional authenticated (but not encrypted) data;
     *            ccAI binds packet-header attributes here.
     */
    Sealed seal(const Bytes &iv, const Bytes &plaintext,
                const Bytes &aad = {}) const;

    /**
     * Verify and decrypt. Returns std::nullopt when the tag check
     * fails (tampered ciphertext, wrong AAD, or wrong IV).
     */
    std::optional<Bytes> open(const Bytes &iv, const Bytes &ciphertext,
                              const Bytes &tag,
                              const Bytes &aad = {}) const;

    /** GHASH over aad||ciphertext with length block (exposed for
     * the AuthTagManager's incremental verification tests). */
    Bytes ghash(const Bytes &aad, const Bytes &ciphertext) const;

  private:
    Bytes ctrKeystreamApply(const Bytes &iv, const Bytes &input,
                            std::uint32_t initial_counter) const;
    void gmul(std::uint8_t x[16], const std::uint8_t y[16]) const;

    Aes aes_;
    std::uint8_t h_[16]; ///< GHASH subkey = AES_K(0^128).
};

} // namespace ccai::crypto

#endif // CCAI_CRYPTO_GCM_HH
