#include "bigint.hh"

#include <algorithm>

#include "common/bytes_util.hh"
#include "common/logging.hh"

namespace ccai::crypto
{

BigInt::BigInt(std::uint64_t v)
{
    while (v) {
        limbs_.push_back(static_cast<std::uint32_t>(v));
        v >>= 32;
    }
}

void
BigInt::trim()
{
    while (!limbs_.empty() && limbs_.back() == 0)
        limbs_.pop_back();
}

BigInt
BigInt::fromBytes(const Bytes &be)
{
    BigInt out;
    for (std::uint8_t b : be) {
        // out = out * 256 + b
        std::uint64_t carry = b;
        for (auto &limb : out.limbs_) {
            std::uint64_t v = (std::uint64_t(limb) << 8) | carry;
            limb = static_cast<std::uint32_t>(v);
            carry = v >> 32;
        }
        while (carry) {
            out.limbs_.push_back(static_cast<std::uint32_t>(carry));
            carry >>= 32;
        }
    }
    out.trim();
    return out;
}

BigInt
BigInt::fromHexString(const std::string &hex)
{
    std::string padded = hex;
    if (padded.size() % 2)
        padded.insert(padded.begin(), '0');
    return fromBytes(fromHex(padded));
}

Bytes
BigInt::toBytes(size_t pad_to) const
{
    Bytes out;
    for (size_t i = 0; i < limbs_.size(); ++i) {
        std::uint32_t limb = limbs_[i];
        for (int j = 0; j < 4; ++j) {
            out.push_back(static_cast<std::uint8_t>(limb));
            limb >>= 8;
        }
    }
    while (!out.empty() && out.back() == 0)
        out.pop_back();
    while (out.size() < pad_to)
        out.push_back(0);
    std::reverse(out.begin(), out.end());
    if (out.empty() && pad_to == 0)
        out.push_back(0);
    return out;
}

std::string
BigInt::toHexString() const
{
    return toHex(toBytes());
}

size_t
BigInt::bitLength() const
{
    if (limbs_.empty())
        return 0;
    std::uint32_t top = limbs_.back();
    size_t bits = (limbs_.size() - 1) * 32;
    while (top) {
        ++bits;
        top >>= 1;
    }
    return bits;
}

bool
BigInt::bit(size_t i) const
{
    size_t limb = i / 32;
    if (limb >= limbs_.size())
        return false;
    return (limbs_[limb] >> (i % 32)) & 1;
}

int
BigInt::cmp(const BigInt &o) const
{
    if (limbs_.size() != o.limbs_.size())
        return limbs_.size() < o.limbs_.size() ? -1 : 1;
    for (size_t i = limbs_.size(); i-- > 0;) {
        if (limbs_[i] != o.limbs_[i])
            return limbs_[i] < o.limbs_[i] ? -1 : 1;
    }
    return 0;
}

BigInt
BigInt::operator+(const BigInt &o) const
{
    BigInt out;
    size_t n = std::max(limbs_.size(), o.limbs_.size());
    out.limbs_.resize(n, 0);
    std::uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
        std::uint64_t v = carry;
        if (i < limbs_.size())
            v += limbs_[i];
        if (i < o.limbs_.size())
            v += o.limbs_[i];
        out.limbs_[i] = static_cast<std::uint32_t>(v);
        carry = v >> 32;
    }
    if (carry)
        out.limbs_.push_back(static_cast<std::uint32_t>(carry));
    return out;
}

BigInt
BigInt::operator-(const BigInt &o) const
{
    ccai_assert(*this >= o);
    BigInt out;
    out.limbs_.resize(limbs_.size(), 0);
    std::int64_t borrow = 0;
    for (size_t i = 0; i < limbs_.size(); ++i) {
        std::int64_t v = std::int64_t(limbs_[i]) - borrow;
        if (i < o.limbs_.size())
            v -= o.limbs_[i];
        if (v < 0) {
            v += (std::int64_t(1) << 32);
            borrow = 1;
        } else {
            borrow = 0;
        }
        out.limbs_[i] = static_cast<std::uint32_t>(v);
    }
    out.trim();
    return out;
}

BigInt
BigInt::operator*(const BigInt &o) const
{
    if (isZero() || o.isZero())
        return BigInt();
    BigInt out;
    out.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
    for (size_t i = 0; i < limbs_.size(); ++i) {
        std::uint64_t carry = 0;
        for (size_t j = 0; j < o.limbs_.size(); ++j) {
            std::uint64_t v = std::uint64_t(limbs_[i]) * o.limbs_[j] +
                              out.limbs_[i + j] + carry;
            out.limbs_[i + j] = static_cast<std::uint32_t>(v);
            carry = v >> 32;
        }
        size_t k = i + o.limbs_.size();
        while (carry) {
            std::uint64_t v = std::uint64_t(out.limbs_[k]) + carry;
            out.limbs_[k] = static_cast<std::uint32_t>(v);
            carry = v >> 32;
            ++k;
        }
    }
    out.trim();
    return out;
}

BigInt
BigInt::operator%(const BigInt &m) const
{
    if (m.isZero())
        fatal("BigInt: modulo by zero");
    if (*this < m)
        return *this;

    // Shift-subtract long division keeping only the remainder.
    BigInt rem;
    for (size_t i = bitLength(); i-- > 0;) {
        // rem = rem * 2 + bit(i)
        std::uint32_t carry = bit(i) ? 1 : 0;
        for (auto &limb : rem.limbs_) {
            std::uint32_t next = limb >> 31;
            limb = (limb << 1) | carry;
            carry = next;
        }
        if (carry)
            rem.limbs_.push_back(carry);
        if (rem >= m)
            rem = rem - m;
    }
    return rem;
}

BigInt
BigInt::addMod(const BigInt &o, const BigInt &m) const
{
    return (*this + o) % m;
}

BigInt
BigInt::mulMod(const BigInt &o, const BigInt &m) const
{
    return (*this * o) % m;
}

BigInt
BigInt::powMod(const BigInt &e, const BigInt &m) const
{
    BigInt result(1);
    BigInt base = *this % m;
    for (size_t i = e.bitLength(); i-- > 0;) {
        result = result.mulMod(result, m);
        if (e.bit(i))
            result = result.mulMod(base, m);
    }
    return result;
}

} // namespace ccai::crypto
