/**
 * @file
 * Deterministic random bit generator (HMAC-DRBG flavoured) used by
 * the trust modules when generating nonces, IVs and session keys.
 * Seeded explicitly so that whole-system simulations replay
 * bit-identically.
 */

#ifndef CCAI_CRYPTO_DRBG_HH
#define CCAI_CRYPTO_DRBG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "crypto/sha256.hh"

namespace ccai::crypto
{

/**
 * HMAC-SHA256 based DRBG (simplified from SP 800-90A): the internal
 * (K, V) state is updated on every generate call, and callers may mix
 * in additional entropy with reseed().
 */
class Drbg
{
  public:
    /** Instantiate from seed material and a personalization string. */
    explicit Drbg(const Bytes &seed,
                  const std::string &personalization = "ccai-drbg");

    /** Mix additional entropy into the state. */
    void reseed(const Bytes &entropy);

    /** Produce @p n pseudo-random bytes. */
    Bytes generate(size_t n);

    /** Convenience: a fresh 96-bit GCM IV. */
    Bytes generateIv();

    /** Convenience: a fresh 128-bit key. */
    Bytes generateKey128();

    /** Convenience: a fresh 256-bit key. */
    Bytes generateKey256();

  private:
    void update(const Bytes &provided);

    Bytes k_;
    Bytes v_;
};

} // namespace ccai::crypto

#endif // CCAI_CRYPTO_DRBG_HH
