/**
 * @file
 * Runtime CPU feature probe for the SIMD GCM dispatch.
 *
 * The secure data plane picks its crypto kernels once per process:
 * cpuid decides whether the AES-NI/PCLMULQDQ (and, where present,
 * VAES/VPCLMULQDQ) paths are usable, and `CCAI_NO_SIMD=1` forces the
 * table-driven portable fallback for CI parity runs. The probe is
 * cached; the answer never changes mid-run except through the test
 * override hook.
 */

#ifndef CCAI_CRYPTO_CPU_FEATURES_HH
#define CCAI_CRYPTO_CPU_FEATURES_HH

namespace ccai::crypto
{

/** Raw cpuid feature bits the GCM dispatch cares about. */
struct CpuFeatures
{
    bool ssse3 = false;
    bool sse41 = false;
    bool aesni = false;
    bool pclmul = false;
    bool avx2 = false;       ///< includes OS YMM-state support
    bool vaes = false;       ///< includes OS YMM-state support
    bool vpclmulqdq = false; ///< includes OS YMM-state support
};

/** Cached cpuid probe (all-false on non-x86 builds). */
const CpuFeatures &cpuFeatures();

/** Which kernel family the dispatcher selected. */
enum class SimdTier
{
    kNone = 0,       ///< table-driven portable path
    kAesniClmul = 1, ///< 128-bit AES-NI + PCLMULQDQ
    kVaes = 2,       ///< 256-bit VAES CTR on top of kAesniClmul
};

/**
 * Selected tier: cpuid capabilities gated by `CCAI_NO_SIMD` (any
 * non-empty value other than "0" disables SIMD). Cached after first
 * call; the test override below bypasses the cache.
 */
SimdTier simdTier();

/**
 * Test hook: force a tier (pass the SimdTier as an int) or clear the
 * override with -1. Ciphers constructed while an override is active
 * bake the overridden tier into their dispatch context.
 */
void overrideSimdTierForTest(int tier);

/** Human-readable tier name for logs and bench JSON. */
const char *simdTierName(SimdTier tier);

} // namespace ccai::crypto

#endif // CCAI_CRYPTO_CPU_FEATURES_HH
