/**
 * @file
 * Runtime-dispatched SIMD kernels for AES-GCM: AES-NI CTR keystream
 * and PCLMULQDQ GHASH, with a VAES 256-bit CTR variant where the CPU
 * and OS support it.
 *
 * The kernels are bit-exact replacements for the table-driven CTR
 * and GHASH inner loops in gcm.cc — same counter layout, same GHASH
 * field convention (accumulator held as two big-endian 64-bit
 * halves) — so an AesGcm can mix SIMD full-block work with the
 * portable tail path and still produce identical tags. Compiled with
 * per-function target attributes; the translation unit itself builds
 * with baseline flags, so CI portability is unchanged and non-x86
 * builds degrade to ready=false contexts.
 */

#ifndef CCAI_CRYPTO_GCM_SIMD_HH
#define CCAI_CRYPTO_GCM_SIMD_HH

#include <cstddef>
#include <cstdint>

namespace ccai::crypto
{

/**
 * Per-cipher dispatch context baked at AesGcm construction: expanded
 * AES round keys in hardware layout plus the GHASH key powers
 * H^1..H^4 (byte-reflected) for 4-block aggregated reduction. Plain
 * bytes so the struct stays copyable and header-portable; kernels
 * reload into vector registers on entry.
 */
struct GcmSimdCtx
{
    /** Round keys, 16 bytes each, rounds+1 entries (<= 15). */
    alignas(16) std::uint8_t roundKeys[15][16] = {};
    /** hPow[i] = H^(i+1), byte-reflected into GHASH convention. */
    alignas(16) std::uint8_t hPow[4][16] = {};
    int rounds = 0;
    bool ready = false; ///< AES-NI + PCLMULQDQ kernels usable
    bool wide = false;  ///< VAES 256-bit CTR enabled
};

/**
 * Populate @p ctx from the expanded round-key words (big-endian,
 * four per round, rounds+1 rounds) and the GHASH subkey H as its two
 * big-endian halves. Leaves ctx.ready=false when the selected
 * simdTier() is kNone.
 */
void gcmSimdInit(GcmSimdCtx &ctx, const std::uint32_t *rkWords,
                 int rounds, std::uint64_t hHigh, std::uint64_t hLow);

/**
 * XOR the CTR keystream into @p data: counter block is
 * iv || be32(counter), incremented per 16-byte block; a partial
 * final block consumes the keystream prefix. Requires ctx.ready.
 */
void gcmSimdCtrXor(const GcmSimdCtx &ctx, const std::uint8_t iv[12],
                   std::uint32_t counter, std::uint8_t *data,
                   size_t len);

/**
 * Absorb @p nblocks full 16-byte blocks into the GHASH accumulator
 * (@p yh / @p yl: big-endian halves, same convention as the table
 * path). Requires ctx.ready.
 */
void gcmSimdGhash(const GcmSimdCtx &ctx, std::uint64_t &yh,
                  std::uint64_t &yl, const std::uint8_t *data,
                  size_t nblocks);

} // namespace ccai::crypto

#endif // CCAI_CRYPTO_GCM_SIMD_HH
