#include "aes.hh"

#include "common/logging.hh"

namespace ccai::crypto
{

namespace
{

/** Generate the AES S-box at startup from the finite-field inverse. */
struct Tables
{
    std::uint8_t sbox[256];
    std::uint8_t inv_sbox[256];

    static std::uint8_t
    gmul(std::uint8_t a, std::uint8_t b)
    {
        std::uint8_t p = 0;
        for (int i = 0; i < 8; ++i) {
            if (b & 1)
                p ^= a;
            bool hi = a & 0x80;
            a <<= 1;
            if (hi)
                a ^= 0x1b;
            b >>= 1;
        }
        return p;
    }

    Tables()
    {
        // Multiplicative inverse table via exhaustive search (256^2
        // is trivial at startup), then affine transform per FIPS-197.
        std::uint8_t inv[256] = {0};
        for (int a = 1; a < 256; ++a) {
            for (int b = 1; b < 256; ++b) {
                if (gmul(static_cast<std::uint8_t>(a),
                         static_cast<std::uint8_t>(b)) == 1) {
                    inv[a] = static_cast<std::uint8_t>(b);
                    break;
                }
            }
        }
        for (int i = 0; i < 256; ++i) {
            std::uint8_t x = inv[i];
            std::uint8_t y = x;
            for (int j = 0; j < 4; ++j) {
                y = static_cast<std::uint8_t>((y << 1) | (y >> 7));
                x ^= y;
            }
            x ^= 0x63;
            sbox[i] = x;
            inv_sbox[x] = static_cast<std::uint8_t>(i);
        }
    }
};

const Tables &
tables()
{
    static Tables t;
    return t;
}

std::uint32_t
subWord(std::uint32_t w)
{
    const Tables &t = tables();
    return (std::uint32_t(t.sbox[(w >> 24) & 0xff]) << 24) |
           (std::uint32_t(t.sbox[(w >> 16) & 0xff]) << 16) |
           (std::uint32_t(t.sbox[(w >> 8) & 0xff]) << 8) |
           std::uint32_t(t.sbox[w & 0xff]);
}

std::uint32_t
rotWord(std::uint32_t w)
{
    return (w << 8) | (w >> 24);
}

std::uint8_t
xtime(std::uint8_t x)
{
    return static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0));
}

std::uint8_t
mul(std::uint8_t x, std::uint8_t y)
{
    return Tables::gmul(x, y);
}

} // namespace

Aes::Aes(const Bytes &key)
{
    int nk;
    switch (key.size()) {
      case 16:
        nk = 4;
        rounds_ = 10;
        break;
      case 24:
        nk = 6;
        rounds_ = 12;
        break;
      case 32:
        nk = 8;
        rounds_ = 14;
        break;
      default:
        fatal("AES key must be 16/24/32 bytes, got %zu", key.size());
    }

    int total = 4 * (rounds_ + 1);
    for (int i = 0; i < nk; ++i) {
        roundKeys_[i] = (std::uint32_t(key[4 * i]) << 24) |
                        (std::uint32_t(key[4 * i + 1]) << 16) |
                        (std::uint32_t(key[4 * i + 2]) << 8) |
                        std::uint32_t(key[4 * i + 3]);
    }
    std::uint32_t rcon = 0x01000000;
    for (int i = nk; i < total; ++i) {
        std::uint32_t temp = roundKeys_[i - 1];
        if (i % nk == 0) {
            temp = subWord(rotWord(temp)) ^ rcon;
            rcon = std::uint32_t(xtime(
                       static_cast<std::uint8_t>(rcon >> 24)))
                   << 24;
        } else if (nk > 6 && i % nk == 4) {
            temp = subWord(temp);
        }
        roundKeys_[i] = roundKeys_[i - nk] ^ temp;
    }
}

void
Aes::encryptBlock(std::uint8_t b[kAesBlockSize]) const
{
    const Tables &t = tables();
    std::uint8_t s[16];
    for (int i = 0; i < 16; ++i)
        s[i] = b[i];

    auto add_round_key = [&](int round) {
        for (int c = 0; c < 4; ++c) {
            std::uint32_t w = roundKeys_[4 * round + c];
            s[4 * c] ^= static_cast<std::uint8_t>(w >> 24);
            s[4 * c + 1] ^= static_cast<std::uint8_t>(w >> 16);
            s[4 * c + 2] ^= static_cast<std::uint8_t>(w >> 8);
            s[4 * c + 3] ^= static_cast<std::uint8_t>(w);
        }
    };

    add_round_key(0);
    for (int round = 1; round <= rounds_; ++round) {
        // SubBytes
        for (auto &v : s)
            v = t.sbox[v];
        // ShiftRows
        std::uint8_t tmp[16];
        for (int r = 0; r < 4; ++r)
            for (int c = 0; c < 4; ++c)
                tmp[4 * c + r] = s[4 * ((c + r) % 4) + r];
        for (int i = 0; i < 16; ++i)
            s[i] = tmp[i];
        // MixColumns (all but last round)
        if (round != rounds_) {
            for (int c = 0; c < 4; ++c) {
                std::uint8_t *col = s + 4 * c;
                std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2],
                             a3 = col[3];
                col[0] = static_cast<std::uint8_t>(
                    xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
                col[1] = static_cast<std::uint8_t>(
                    a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
                col[2] = static_cast<std::uint8_t>(
                    a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
                col[3] = static_cast<std::uint8_t>(
                    (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
            }
        }
        add_round_key(round);
    }

    for (int i = 0; i < 16; ++i)
        b[i] = s[i];
}

void
Aes::decryptBlock(std::uint8_t b[kAesBlockSize]) const
{
    const Tables &t = tables();
    std::uint8_t s[16];
    for (int i = 0; i < 16; ++i)
        s[i] = b[i];

    auto add_round_key = [&](int round) {
        for (int c = 0; c < 4; ++c) {
            std::uint32_t w = roundKeys_[4 * round + c];
            s[4 * c] ^= static_cast<std::uint8_t>(w >> 24);
            s[4 * c + 1] ^= static_cast<std::uint8_t>(w >> 16);
            s[4 * c + 2] ^= static_cast<std::uint8_t>(w >> 8);
            s[4 * c + 3] ^= static_cast<std::uint8_t>(w);
        }
    };

    add_round_key(rounds_);
    for (int round = rounds_ - 1; round >= 0; --round) {
        // InvShiftRows
        std::uint8_t tmp[16];
        for (int r = 0; r < 4; ++r)
            for (int c = 0; c < 4; ++c)
                tmp[4 * ((c + r) % 4) + r] = s[4 * c + r];
        for (int i = 0; i < 16; ++i)
            s[i] = tmp[i];
        // InvSubBytes
        for (auto &v : s)
            v = t.inv_sbox[v];
        add_round_key(round);
        // InvMixColumns (all but final iteration)
        if (round != 0) {
            for (int c = 0; c < 4; ++c) {
                std::uint8_t *col = s + 4 * c;
                std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2],
                             a3 = col[3];
                col[0] = static_cast<std::uint8_t>(
                    mul(a0, 14) ^ mul(a1, 11) ^ mul(a2, 13) ^ mul(a3, 9));
                col[1] = static_cast<std::uint8_t>(
                    mul(a0, 9) ^ mul(a1, 14) ^ mul(a2, 11) ^ mul(a3, 13));
                col[2] = static_cast<std::uint8_t>(
                    mul(a0, 13) ^ mul(a1, 9) ^ mul(a2, 14) ^ mul(a3, 11));
                col[3] = static_cast<std::uint8_t>(
                    mul(a0, 11) ^ mul(a1, 13) ^ mul(a2, 9) ^ mul(a3, 14));
            }
        }
    }

    for (int i = 0; i < 16; ++i)
        b[i] = s[i];
}

} // namespace ccai::crypto
