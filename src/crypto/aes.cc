#include "aes.hh"

#include "common/logging.hh"

namespace ccai::crypto
{

namespace
{

/**
 * Generate the AES S-box and the encrypt-side T-tables at startup
 * from the finite-field inverse.
 */
struct Tables
{
    std::uint8_t sbox[256];
    std::uint8_t inv_sbox[256];
    /** te0[x] = {02·S(x), S(x), S(x), 03·S(x)}; te1..te3 are its
     * successive 8-bit right rotations (one table per state row). */
    std::uint32_t te0[256];
    std::uint32_t te1[256];
    std::uint32_t te2[256];
    std::uint32_t te3[256];

    static std::uint8_t
    gmul(std::uint8_t a, std::uint8_t b)
    {
        std::uint8_t p = 0;
        for (int i = 0; i < 8; ++i) {
            if (b & 1)
                p ^= a;
            bool hi = a & 0x80;
            a <<= 1;
            if (hi)
                a ^= 0x1b;
            b >>= 1;
        }
        return p;
    }

    Tables()
    {
        // Multiplicative inverses from generator powers: 0x03
        // generates GF(256)*, so with exp[i] = 3^i and log its
        // inverse map, inv[x] = 3^(255 - log[x]). One 256-entry
        // pass instead of a 256x256 search.
        std::uint8_t exp[256] = {0};
        std::uint8_t log[256] = {0};
        std::uint8_t g = 1;
        for (int i = 0; i < 255; ++i) {
            exp[i] = g;
            log[g] = static_cast<std::uint8_t>(i);
            // g *= 3 (i.e. g = 2g + g in GF(256)).
            g = static_cast<std::uint8_t>(
                g ^ (g << 1) ^ ((g & 0x80) ? 0x1b : 0));
        }
        exp[255] = exp[0]; // 3^255 = 1

        for (int i = 0; i < 256; ++i) {
            // Affine transform per FIPS-197 over the inverse.
            std::uint8_t x = i ? exp[255 - log[i]] : 0;
            std::uint8_t y = x;
            for (int j = 0; j < 4; ++j) {
                y = static_cast<std::uint8_t>((y << 1) | (y >> 7));
                x ^= y;
            }
            x ^= 0x63;
            sbox[i] = x;
            inv_sbox[x] = static_cast<std::uint8_t>(i);
        }

        for (int i = 0; i < 256; ++i) {
            std::uint8_t s = sbox[i];
            std::uint8_t s2 = static_cast<std::uint8_t>(
                (s << 1) ^ ((s & 0x80) ? 0x1b : 0));
            std::uint8_t s3 = static_cast<std::uint8_t>(s ^ s2);
            std::uint32_t w = (std::uint32_t(s2) << 24) |
                              (std::uint32_t(s) << 16) |
                              (std::uint32_t(s) << 8) |
                              std::uint32_t(s3);
            te0[i] = w;
            te1[i] = (w >> 8) | (w << 24);
            te2[i] = (w >> 16) | (w << 16);
            te3[i] = (w >> 24) | (w << 8);
        }
    }
};

const Tables &
tables()
{
    static Tables t;
    return t;
}

std::uint32_t
subWord(std::uint32_t w)
{
    const Tables &t = tables();
    return (std::uint32_t(t.sbox[(w >> 24) & 0xff]) << 24) |
           (std::uint32_t(t.sbox[(w >> 16) & 0xff]) << 16) |
           (std::uint32_t(t.sbox[(w >> 8) & 0xff]) << 8) |
           std::uint32_t(t.sbox[w & 0xff]);
}

std::uint32_t
rotWord(std::uint32_t w)
{
    return (w << 8) | (w >> 24);
}

std::uint8_t
xtime(std::uint8_t x)
{
    return static_cast<std::uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0));
}

std::uint8_t
mul(std::uint8_t x, std::uint8_t y)
{
    return Tables::gmul(x, y);
}

} // namespace

Aes::Aes(const Bytes &key)
{
    int nk;
    switch (key.size()) {
      case 16:
        nk = 4;
        rounds_ = 10;
        break;
      case 24:
        nk = 6;
        rounds_ = 12;
        break;
      case 32:
        nk = 8;
        rounds_ = 14;
        break;
      default:
        fatal("AES key must be 16/24/32 bytes, got %zu", key.size());
    }

    int total = 4 * (rounds_ + 1);
    for (int i = 0; i < nk; ++i) {
        roundKeys_[i] = (std::uint32_t(key[4 * i]) << 24) |
                        (std::uint32_t(key[4 * i + 1]) << 16) |
                        (std::uint32_t(key[4 * i + 2]) << 8) |
                        std::uint32_t(key[4 * i + 3]);
    }
    std::uint32_t rcon = 0x01000000;
    for (int i = nk; i < total; ++i) {
        std::uint32_t temp = roundKeys_[i - 1];
        if (i % nk == 0) {
            temp = subWord(rotWord(temp)) ^ rcon;
            rcon = std::uint32_t(xtime(
                       static_cast<std::uint8_t>(rcon >> 24)))
                   << 24;
        } else if (nk > 6 && i % nk == 4) {
            temp = subWord(temp);
        }
        roundKeys_[i] = roundKeys_[i - nk] ^ temp;
    }
}

void
Aes::encryptWords(std::uint32_t s0, std::uint32_t s1, std::uint32_t s2,
                  std::uint32_t s3,
                  std::uint8_t out[kAesBlockSize]) const
{
    const Tables &t = tables();
    const std::uint32_t *rk = roundKeys_.data();

    s0 ^= rk[0];
    s1 ^= rk[1];
    s2 ^= rk[2];
    s3 ^= rk[3];
    rk += 4;

    // Each T-table lookup folds SubBytes, ShiftRows and MixColumns
    // for one state byte; a full round is 16 loads and 16 xors.
    for (int round = 1; round < rounds_; ++round, rk += 4) {
        std::uint32_t t0 = t.te0[s0 >> 24] ^
                           t.te1[(s1 >> 16) & 0xff] ^
                           t.te2[(s2 >> 8) & 0xff] ^
                           t.te3[s3 & 0xff] ^ rk[0];
        std::uint32_t t1 = t.te0[s1 >> 24] ^
                           t.te1[(s2 >> 16) & 0xff] ^
                           t.te2[(s3 >> 8) & 0xff] ^
                           t.te3[s0 & 0xff] ^ rk[1];
        std::uint32_t t2 = t.te0[s2 >> 24] ^
                           t.te1[(s3 >> 16) & 0xff] ^
                           t.te2[(s0 >> 8) & 0xff] ^
                           t.te3[s1 & 0xff] ^ rk[2];
        std::uint32_t t3 = t.te0[s3 >> 24] ^
                           t.te1[(s0 >> 16) & 0xff] ^
                           t.te2[(s1 >> 8) & 0xff] ^
                           t.te3[s2 & 0xff] ^ rk[3];
        s0 = t0;
        s1 = t1;
        s2 = t2;
        s3 = t3;
    }

    // Final round: SubBytes + ShiftRows only.
    std::uint32_t o0 = (std::uint32_t(t.sbox[s0 >> 24]) << 24) |
                       (std::uint32_t(t.sbox[(s1 >> 16) & 0xff]) << 16) |
                       (std::uint32_t(t.sbox[(s2 >> 8) & 0xff]) << 8) |
                       std::uint32_t(t.sbox[s3 & 0xff]);
    std::uint32_t o1 = (std::uint32_t(t.sbox[s1 >> 24]) << 24) |
                       (std::uint32_t(t.sbox[(s2 >> 16) & 0xff]) << 16) |
                       (std::uint32_t(t.sbox[(s3 >> 8) & 0xff]) << 8) |
                       std::uint32_t(t.sbox[s0 & 0xff]);
    std::uint32_t o2 = (std::uint32_t(t.sbox[s2 >> 24]) << 24) |
                       (std::uint32_t(t.sbox[(s3 >> 16) & 0xff]) << 16) |
                       (std::uint32_t(t.sbox[(s0 >> 8) & 0xff]) << 8) |
                       std::uint32_t(t.sbox[s1 & 0xff]);
    std::uint32_t o3 = (std::uint32_t(t.sbox[s3 >> 24]) << 24) |
                       (std::uint32_t(t.sbox[(s0 >> 16) & 0xff]) << 16) |
                       (std::uint32_t(t.sbox[(s1 >> 8) & 0xff]) << 8) |
                       std::uint32_t(t.sbox[s2 & 0xff]);
    o0 ^= rk[0];
    o1 ^= rk[1];
    o2 ^= rk[2];
    o3 ^= rk[3];

    for (int c = 0; c < 4; ++c) {
        std::uint32_t w = c == 0 ? o0 : c == 1 ? o1 : c == 2 ? o2 : o3;
        out[4 * c] = static_cast<std::uint8_t>(w >> 24);
        out[4 * c + 1] = static_cast<std::uint8_t>(w >> 16);
        out[4 * c + 2] = static_cast<std::uint8_t>(w >> 8);
        out[4 * c + 3] = static_cast<std::uint8_t>(w);
    }
}

void
Aes::encryptBlock(std::uint8_t b[kAesBlockSize]) const
{
    auto w = [&](int c) {
        return (std::uint32_t(b[4 * c]) << 24) |
               (std::uint32_t(b[4 * c + 1]) << 16) |
               (std::uint32_t(b[4 * c + 2]) << 8) |
               std::uint32_t(b[4 * c + 3]);
    };
    encryptWords(w(0), w(1), w(2), w(3), b);
}

void
Aes::ctrKeystream(const std::uint8_t iv[12], std::uint32_t counter,
                  std::uint8_t *out, size_t nblocks) const
{
    auto w = [&](int i) {
        return (std::uint32_t(iv[4 * i]) << 24) |
               (std::uint32_t(iv[4 * i + 1]) << 16) |
               (std::uint32_t(iv[4 * i + 2]) << 8) |
               std::uint32_t(iv[4 * i + 3]);
    };
    std::uint32_t w0 = w(0), w1 = w(1), w2 = w(2);
    for (size_t i = 0; i < nblocks; ++i, out += kAesBlockSize)
        encryptWords(w0, w1, w2, counter++, out);
}

void
Aes::decryptBlock(std::uint8_t b[kAesBlockSize]) const
{
    const Tables &t = tables();
    std::uint8_t s[16];
    for (int i = 0; i < 16; ++i)
        s[i] = b[i];

    auto add_round_key = [&](int round) {
        for (int c = 0; c < 4; ++c) {
            std::uint32_t w = roundKeys_[4 * round + c];
            s[4 * c] ^= static_cast<std::uint8_t>(w >> 24);
            s[4 * c + 1] ^= static_cast<std::uint8_t>(w >> 16);
            s[4 * c + 2] ^= static_cast<std::uint8_t>(w >> 8);
            s[4 * c + 3] ^= static_cast<std::uint8_t>(w);
        }
    };

    add_round_key(rounds_);
    for (int round = rounds_ - 1; round >= 0; --round) {
        // InvShiftRows
        std::uint8_t tmp[16];
        for (int r = 0; r < 4; ++r)
            for (int c = 0; c < 4; ++c)
                tmp[4 * ((c + r) % 4) + r] = s[4 * c + r];
        for (int i = 0; i < 16; ++i)
            s[i] = tmp[i];
        // InvSubBytes
        for (auto &v : s)
            v = t.inv_sbox[v];
        add_round_key(round);
        // InvMixColumns (all but final iteration)
        if (round != 0) {
            for (int c = 0; c < 4; ++c) {
                std::uint8_t *col = s + 4 * c;
                std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2],
                             a3 = col[3];
                col[0] = static_cast<std::uint8_t>(
                    mul(a0, 14) ^ mul(a1, 11) ^ mul(a2, 13) ^ mul(a3, 9));
                col[1] = static_cast<std::uint8_t>(
                    mul(a0, 9) ^ mul(a1, 14) ^ mul(a2, 11) ^ mul(a3, 13));
                col[2] = static_cast<std::uint8_t>(
                    mul(a0, 13) ^ mul(a1, 9) ^ mul(a2, 14) ^ mul(a3, 11));
                col[3] = static_cast<std::uint8_t>(
                    mul(a0, 11) ^ mul(a1, 13) ^ mul(a2, 9) ^ mul(a3, 14));
            }
        }
    }

    for (int i = 0; i < 16; ++i)
        b[i] = s[i];
}

} // namespace ccai::crypto
