#include "gcm.hh"

#include <cstring>

#include "common/bytes_util.hh"
#include "common/logging.hh"

namespace ccai::crypto
{

AesGcm::AesGcm(const Bytes &key) : aes_(key)
{
    std::memset(h_, 0, sizeof(h_));
    aes_.encryptBlock(h_);
}

void
AesGcm::gmul(std::uint8_t x[16], const std::uint8_t y[16]) const
{
    // Bitwise GF(2^128) multiplication, right-shift variant from
    // SP 800-38D section 6.3. z = x * y.
    std::uint8_t z[16] = {0};
    std::uint8_t v[16];
    std::memcpy(v, y, 16);

    for (int i = 0; i < 128; ++i) {
        int byte = i / 8;
        int bit = 7 - (i % 8);
        if ((x[byte] >> bit) & 1) {
            for (int j = 0; j < 16; ++j)
                z[j] ^= v[j];
        }
        bool lsb = v[15] & 1;
        for (int j = 15; j > 0; --j)
            v[j] = static_cast<std::uint8_t>((v[j] >> 1) |
                                             ((v[j - 1] & 1) << 7));
        v[0] >>= 1;
        if (lsb)
            v[0] ^= 0xe1;
    }
    std::memcpy(x, z, 16);
}

Bytes
AesGcm::ghash(const Bytes &aad, const Bytes &ciphertext) const
{
    std::uint8_t y[16] = {0};

    auto absorb = [&](const Bytes &data) {
        size_t off = 0;
        while (off < data.size()) {
            std::uint8_t block[16] = {0};
            size_t take = std::min<size_t>(16, data.size() - off);
            std::memcpy(block, data.data() + off, take);
            for (int j = 0; j < 16; ++j)
                y[j] ^= block[j];
            gmul(y, h_);
            off += take;
        }
    };

    absorb(aad);
    absorb(ciphertext);

    std::uint8_t len_block[16];
    storeBe64(len_block, aad.size() * 8);
    storeBe64(len_block + 8, ciphertext.size() * 8);
    for (int j = 0; j < 16; ++j)
        y[j] ^= len_block[j];
    gmul(y, h_);

    return Bytes(y, y + 16);
}

Bytes
AesGcm::ctrKeystreamApply(const Bytes &iv, const Bytes &input,
                          std::uint32_t initial_counter) const
{
    ccai_assert(iv.size() == kGcmIvSize);
    Bytes out = input;
    std::uint8_t counter_block[16];
    std::memcpy(counter_block, iv.data(), 12);
    std::uint32_t ctr = initial_counter;

    size_t off = 0;
    while (off < out.size()) {
        storeBe32(counter_block + 12, ctr++);
        std::uint8_t ks[16];
        std::memcpy(ks, counter_block, 16);
        aes_.encryptBlock(ks);
        size_t take = std::min<size_t>(16, out.size() - off);
        for (size_t j = 0; j < take; ++j)
            out[off + j] ^= ks[j];
        off += take;
    }
    return out;
}

Sealed
AesGcm::seal(const Bytes &iv, const Bytes &plaintext,
             const Bytes &aad) const
{
    Sealed result;
    result.ciphertext = ctrKeystreamApply(iv, plaintext, 2);

    Bytes s = ghash(aad, result.ciphertext);
    // Tag = E_K(J0) xor S, where J0 = IV || 0^31 1.
    Bytes tag_mask = ctrKeystreamApply(iv, Bytes(16, 0), 1);
    for (int i = 0; i < 16; ++i)
        s[i] ^= tag_mask[i];
    result.tag = std::move(s);
    return result;
}

std::optional<Bytes>
AesGcm::open(const Bytes &iv, const Bytes &ciphertext, const Bytes &tag,
             const Bytes &aad) const
{
    Bytes s = ghash(aad, ciphertext);
    Bytes tag_mask = ctrKeystreamApply(iv, Bytes(16, 0), 1);
    for (int i = 0; i < 16; ++i)
        s[i] ^= tag_mask[i];
    if (!constantTimeEqual(s, tag))
        return std::nullopt;
    return ctrKeystreamApply(iv, ciphertext, 2);
}

} // namespace ccai::crypto
