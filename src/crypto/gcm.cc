#include "gcm.hh"

#include <algorithm>
#include <cstring>

#include "common/bytes_util.hh"
#include "common/logging.hh"
#include "crypto/worker_pool.hh"

namespace ccai::crypto
{

namespace
{

/**
 * Reduction constants for the 4-bit table walk: kLast4[r] << 48 is
 * (r * x^-4 mod P) folded into the high half, P the GHASH polynomial
 * (0xe1 || 0^120).
 */
constexpr std::uint64_t kLast4[16] = {
    0x0000, 0x1c20, 0x3840, 0x2460, 0x7080, 0x6ca0, 0x48c0, 0x54e0,
    0xe100, 0xfd20, 0xd940, 0xc560, 0x9180, 0x8da0, 0xa9c0, 0xb5e0,
};

/** How many CTR blocks one keystream batch covers (2 KiB stack). */
constexpr size_t kCtrBatchBlocks = 128;

} // namespace

AesGcm::AesGcm(const Bytes &key) : aes_(key)
{
    // GHASH subkey H = E_K(0^128), then the 4-bit Shoup table:
    // row i holds i*H so one multiply is 32 table lookups plus
    // 4-bit reduction shifts instead of 128 conditional xors.
    std::uint8_t h[16] = {0};
    aes_.encryptBlock(h);

    std::uint64_t vh = loadBe64(h);
    std::uint64_t vl = loadBe64(h + 8);
    hh_[8] = vh;
    hl_[8] = vl;
    hh_[0] = 0;
    hl_[0] = 0;
    for (int i = 4; i > 0; i >>= 1) {
        // Halve: v <- v * x^-1 (right shift with reduction).
        std::uint32_t t = (vl & 1) * 0xe1000000u;
        vl = (vh << 63) | (vl >> 1);
        vh = (vh >> 1) ^ (static_cast<std::uint64_t>(t) << 32);
        hh_[i] = vh;
        hl_[i] = vl;
    }
    for (int i = 2; i <= 8; i *= 2) {
        for (int j = 1; j < i; ++j) {
            hh_[i + j] = hh_[i] ^ hh_[j];
            hl_[i + j] = hl_[i] ^ hl_[j];
        }
    }

    // Repeated-squaring ladder for hPower(): H^(2^i).
    hp2h_[0] = hh_[8];
    hp2l_[0] = hl_[8];
    for (int i = 1; i < kHPowLadder; ++i)
        gf128Mul(hp2h_[i - 1], hp2l_[i - 1], hp2h_[i - 1],
                 hp2l_[i - 1], hp2h_[i], hp2l_[i]);

    // Bake the SIMD dispatch context (no-op when cpuid or
    // CCAI_NO_SIMD rules the hardware path out).
    gcmSimdInit(simd_, aes_.roundKeyWords(), aes_.rounds(), hh_[8],
                hl_[8]);
}

void
AesGcm::gmult(std::uint64_t &yh, std::uint64_t &yl) const
{
    std::uint8_t x[16];
    storeBe64(x, yh);
    storeBe64(x + 8, yl);

    std::uint8_t lo = x[15] & 0xf;
    std::uint64_t zh = hh_[lo];
    std::uint64_t zl = hl_[lo];

    for (int i = 15; i >= 0; --i) {
        lo = x[i] & 0xf;
        std::uint8_t hi = x[i] >> 4;
        if (i != 15) {
            std::uint8_t rem = zl & 0xf;
            zl = (zh << 60) | (zl >> 4);
            zh = (zh >> 4) ^ (kLast4[rem] << 48);
            zh ^= hh_[lo];
            zl ^= hl_[lo];
        }
        std::uint8_t rem = zl & 0xf;
        zl = (zh << 60) | (zl >> 4);
        zh = (zh >> 4) ^ (kLast4[rem] << 48);
        zh ^= hh_[hi];
        zl ^= hl_[hi];
    }
    yh = zh;
    yl = zl;
}

void
AesGcm::ghashAbsorb(std::uint64_t &yh, std::uint64_t &yl,
                    const std::uint8_t *data, size_t len) const
{
    size_t off = 0;
    if (simd_.ready && len >= 16) {
        // PCLMULQDQ handles the full blocks; the zero-padded tail
        // (if any) falls through to the table path below. Both paths
        // compute the identical field product, so mixing them keeps
        // tags bit-exact.
        size_t blocks = len / 16;
        gcmSimdGhash(simd_, yh, yl, data, blocks);
        off = blocks * 16;
    }
    while (off + 16 <= len) {
        yh ^= loadBe64(data + off);
        yl ^= loadBe64(data + off + 8);
        gmult(yh, yl);
        off += 16;
    }
    if (off < len) {
        std::uint8_t block[16] = {0};
        std::memcpy(block, data + off, len - off);
        yh ^= loadBe64(block);
        yl ^= loadBe64(block + 8);
        gmult(yh, yl);
    }
}

Bytes
AesGcm::ghash(const Bytes &aad, const Bytes &ciphertext) const
{
    std::uint64_t yh = 0, yl = 0;
    ghashAbsorb(yh, yl, aad.data(), aad.size());
    ghashAbsorb(yh, yl, ciphertext.data(), ciphertext.size());
    yh ^= static_cast<std::uint64_t>(aad.size()) * 8;
    yl ^= static_cast<std::uint64_t>(ciphertext.size()) * 8;
    gmult(yh, yl);

    Bytes out(16);
    storeBe64(out.data(), yh);
    storeBe64(out.data() + 8, yl);
    return out;
}

void
AesGcm::ctrApply(const Bytes &iv, std::uint8_t *data, size_t len,
                 std::uint32_t counter) const
{
    ccai_assert(iv.size() == kGcmIvSize);
    if (simd_.ready) {
        gcmSimdCtrXor(simd_, iv.data(), counter, data, len);
        return;
    }
    std::uint8_t ks[kCtrBatchBlocks * kAesBlockSize];
    size_t off = 0;
    while (off < len) {
        size_t blocks = std::min(kCtrBatchBlocks,
                                 (len - off + 15) / kAesBlockSize);
        aes_.ctrKeystream(iv.data(), counter, ks, blocks);
        counter += static_cast<std::uint32_t>(blocks);
        size_t take = std::min(len - off, blocks * kAesBlockSize);
        for (size_t j = 0; j < take; ++j)
            data[off + j] ^= ks[j];
        off += take;
    }
}

void
AesGcm::computeTag(const Bytes &iv, const std::uint8_t *ct, size_t len,
                   const std::uint8_t *aad, size_t aadLen,
                   std::uint8_t tag[kGcmTagSize]) const
{
    std::uint64_t yh = 0, yl = 0;
    ghashAbsorb(yh, yl, aad, aadLen);
    ghashAbsorb(yh, yl, ct, len);
    yh ^= static_cast<std::uint64_t>(aadLen) * 8;
    yl ^= static_cast<std::uint64_t>(len) * 8;
    gmult(yh, yl);

    // Tag = E_K(J0) xor S, where J0 = IV || 0^31 1.
    std::uint8_t mask[kAesBlockSize];
    aes_.ctrKeystream(iv.data(), 1, mask, 1);
    storeBe64(tag, yh);
    storeBe64(tag + 8, yl);
    for (size_t i = 0; i < kGcmTagSize; ++i)
        tag[i] ^= mask[i];
}

void
AesGcm::sealInPlace(const Bytes &iv, std::uint8_t *data, size_t len,
                    const std::uint8_t *aad, size_t aadLen,
                    std::uint8_t tag[kGcmTagSize]) const
{
    ctrApply(iv, data, len, 2);
    computeTag(iv, data, len, aad, aadLen, tag);
}

bool
AesGcm::openInPlace(const Bytes &iv, std::uint8_t *data, size_t len,
                    const std::uint8_t tag[kGcmTagSize],
                    const std::uint8_t *aad, size_t aadLen) const
{
    std::uint8_t expect[kGcmTagSize];
    computeTag(iv, data, len, aad, aadLen, expect);
    // Constant-shape comparison (no early exit), matching hardware
    // tag-check semantics.
    std::uint8_t diff = 0;
    for (size_t i = 0; i < kGcmTagSize; ++i)
        diff |= expect[i] ^ tag[i];
    if (diff != 0)
        return false;
    ctrApply(iv, data, len, 2);
    return true;
}

// ---------------------------------------------------------------------
// Parallel data-engine entry points. The decomposition is exact: CTR
// blocks are independent by construction, and GHASH distributes over
// contiguous segments as Y_n = A*H^n + sum_k S_k * H^{n-e_k}, where
// S_k is segment k's zero-seeded GHASH, e_k its last global block
// index, and A the post-AAD accumulator. Tags are therefore
// bit-identical to the serial path at any lane count.
// ---------------------------------------------------------------------

int
AesGcm::parallelLanes(size_t len, int width)
{
    if (width <= 1 || len < kGcmParallelMinBytes)
        return 1;
    // Keep every lane at least half the threshold so the fork is
    // never more expensive than the crypto it spreads.
    size_t cap = len / (kGcmParallelMinBytes / 2);
    return static_cast<int>(
        std::min<size_t>(static_cast<size_t>(width), cap));
}

void
AesGcm::gf128Mul(std::uint64_t xh, std::uint64_t xl, std::uint64_t yh,
                 std::uint64_t yl, std::uint64_t &zh, std::uint64_t &zl)
{
    // SP 800-38D Algorithm 1 in the bit-reflected convention the
    // Shoup table uses: V <- V * x is a right shift reduced by
    // R = 0xe1 << 120. The multiplicative identity is the block
    // 0x80 0x00... i.e. (1 << 63, 0).
    std::uint64_t vh = yh, vl = yl;
    zh = 0;
    zl = 0;
    for (int i = 0; i < 128; ++i) {
        std::uint64_t bit = i < 64 ? (xh >> (63 - i)) & 1
                                   : (xl >> (127 - i)) & 1;
        if (bit) {
            zh ^= vh;
            zl ^= vl;
        }
        std::uint64_t lsb = vl & 1;
        vl = (vh << 63) | (vl >> 1);
        vh >>= 1;
        if (lsb)
            vh ^= 0xe100000000000000ull;
    }
}

void
AesGcm::hPower(std::uint64_t t, std::uint64_t &ph,
               std::uint64_t &pl) const
{
    // Walk the precomputed H^(2^i) ladder: popcount(t) multiplies,
    // no squarings on the hot fold path.
    ccai_assert(t < (1ull << kHPowLadder));
    std::uint64_t rh = 1ull << 63, rl = 0; // identity
    for (int i = 0; t; ++i, t >>= 1) {
        if (t & 1)
            gf128Mul(rh, rl, hp2h_[i], hp2l_[i], rh, rl);
    }
    ph = rh;
    pl = rl;
}

void
AesGcm::ctrApplyParallel(const Bytes &iv, std::uint8_t *data,
                         size_t len, WorkerPool &pool, int lanes) const
{
    size_t fullBlocks = len / kAesBlockSize;
    size_t n = static_cast<size_t>(lanes);
    pool.parallelFor(n, lanes, [&](size_t k) {
        size_t b0 = fullBlocks * k / n;
        size_t b1 = fullBlocks * (k + 1) / n;
        size_t begin = b0 * kAesBlockSize;
        size_t end = k + 1 == n ? len : b1 * kAesBlockSize;
        if (end > begin)
            ctrApply(iv, data + begin, end - begin,
                     2 + static_cast<std::uint32_t>(b0));
    });
}

void
AesGcm::computeTagParallel(const Bytes &iv, const std::uint8_t *ct,
                           size_t len, const std::uint8_t *aad,
                           size_t aadLen,
                           std::uint8_t tag[kGcmTagSize],
                           WorkerPool &pool, int lanes) const
{
    size_t fullBlocks = len / kAesBlockSize;
    size_t n = static_cast<size_t>(lanes);

    std::vector<std::uint64_t> sh(n, 0), sl(n, 0);
    pool.parallelFor(n, lanes, [&](size_t k) {
        size_t b0 = fullBlocks * k / n;
        size_t b1 = fullBlocks * (k + 1) / n;
        ghashAbsorb(sh[k], sl[k], ct + b0 * kAesBlockSize,
                    (b1 - b0) * kAesBlockSize);
    });

    // Serial fold, identical at any scheduling: XOR is commutative
    // and every power is a pure function of the segment geometry.
    std::uint64_t yh = 0, yl = 0;
    ghashAbsorb(yh, yl, aad, aadLen);
    if (yh || yl) {
        std::uint64_t ph, pl;
        hPower(fullBlocks, ph, pl);
        gf128Mul(yh, yl, ph, pl, yh, yl);
    }
    for (size_t k = 0; k < n; ++k) {
        size_t e = fullBlocks * (k + 1) / n;
        std::uint64_t ph, pl, th, tl;
        hPower(fullBlocks - e, ph, pl);
        gf128Mul(sh[k], sl[k], ph, pl, th, tl);
        yh ^= th;
        yl ^= tl;
    }
    if (size_t tail = len % kAesBlockSize)
        ghashAbsorb(yh, yl, ct + fullBlocks * kAesBlockSize, tail);
    yh ^= static_cast<std::uint64_t>(aadLen) * 8;
    yl ^= static_cast<std::uint64_t>(len) * 8;
    gmult(yh, yl);

    std::uint8_t mask[kAesBlockSize];
    aes_.ctrKeystream(iv.data(), 1, mask, 1);
    storeBe64(tag, yh);
    storeBe64(tag + 8, yl);
    for (size_t i = 0; i < kGcmTagSize; ++i)
        tag[i] ^= mask[i];
}

void
AesGcm::sealInPlace(const Bytes &iv, std::uint8_t *data, size_t len,
                    const std::uint8_t *aad, size_t aadLen,
                    std::uint8_t tag[kGcmTagSize], WorkerPool &pool,
                    int width) const
{
    int lanes = parallelLanes(len, width);
    if (lanes <= 1) {
        sealInPlace(iv, data, len, aad, aadLen, tag);
        return;
    }
    ctrApplyParallel(iv, data, len, pool, lanes);
    computeTagParallel(iv, data, len, aad, aadLen, tag, pool, lanes);
}

bool
AesGcm::openInPlace(const Bytes &iv, std::uint8_t *data, size_t len,
                    const std::uint8_t tag[kGcmTagSize],
                    const std::uint8_t *aad, size_t aadLen,
                    WorkerPool &pool, int width) const
{
    int lanes = parallelLanes(len, width);
    if (lanes <= 1)
        return openInPlace(iv, data, len, tag, aad, aadLen);
    std::uint8_t expect[kGcmTagSize];
    computeTagParallel(iv, data, len, aad, aadLen, expect, pool,
                       lanes);
    std::uint8_t diff = 0;
    for (size_t i = 0; i < kGcmTagSize; ++i)
        diff |= expect[i] ^ tag[i];
    if (diff != 0)
        return false;
    ctrApplyParallel(iv, data, len, pool, lanes);
    return true;
}

Sealed
AesGcm::seal(const Bytes &iv, const Bytes &plaintext,
             const Bytes &aad) const
{
    Sealed result;
    result.ciphertext = plaintext;
    result.tag.resize(kGcmTagSize);
    sealInPlace(iv, result.ciphertext.data(), result.ciphertext.size(),
                aad.data(), aad.size(), result.tag.data());
    return result;
}

std::optional<Bytes>
AesGcm::open(const Bytes &iv, const Bytes &ciphertext, const Bytes &tag,
             const Bytes &aad) const
{
    if (tag.size() != kGcmTagSize)
        return std::nullopt;
    Bytes plaintext = ciphertext;
    if (!openInPlace(iv, plaintext.data(), plaintext.size(), tag.data(),
                     aad.data(), aad.size()))
        return std::nullopt;
    return plaintext;
}

} // namespace ccai::crypto
