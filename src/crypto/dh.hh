/**
 * @file
 * Finite-field Diffie-Hellman key exchange and Schnorr-style
 * signatures over the same group. These back the remote attestation
 * protocol in the trust module (Figure 6 of the paper).
 *
 * Simulation-grade: a 256-bit prime group keeps modexp fast; real
 * deployments would use standard 2048-bit MODP groups or ECDH.
 */

#ifndef CCAI_CRYPTO_DH_HH
#define CCAI_CRYPTO_DH_HH

#include <string>

#include "crypto/bigint.hh"
#include "sim/rng.hh"

namespace ccai::crypto
{

/** Multiplicative group parameters (prime modulus and generator). */
struct DhGroup
{
    BigInt p; ///< prime modulus
    BigInt g; ///< generator

    /** The fixed group used throughout the simulation. */
    static const DhGroup &standard();
};

/** A DH/Schnorr key pair. */
struct KeyPair
{
    BigInt priv; ///< x
    BigInt pub;  ///< g^x mod p
};

/** Generate a key pair using @p rng for the private exponent. */
KeyPair generateKeyPair(sim::Rng &rng, const DhGroup &group =
                                           DhGroup::standard());

/** Compute the shared secret peer_pub^priv mod p. */
Bytes computeSharedSecret(const BigInt &priv, const BigInt &peer_pub,
                          const DhGroup &group = DhGroup::standard());

/** Schnorr-style signature (r, s). */
struct Signature
{
    BigInt r;
    BigInt s;

    Bytes serialize() const;
    static Signature deserialize(const Bytes &data);
};

/** Sign @p message with private key @p priv. */
Signature sign(const BigInt &priv, const Bytes &message, sim::Rng &rng,
               const DhGroup &group = DhGroup::standard());

/** Verify a signature against public key @p pub. */
bool verify(const BigInt &pub, const Bytes &message, const Signature &sig,
            const DhGroup &group = DhGroup::standard());

} // namespace ccai::crypto

#endif // CCAI_CRYPTO_DH_HH
