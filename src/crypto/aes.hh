/**
 * @file
 * AES-128/192/256 block cipher (FIPS-197), software implementation.
 *
 * Simulation-grade: correct and test-vector verified, but not
 * hardened against timing side channels (table lookups are used).
 */

#ifndef CCAI_CRYPTO_AES_HH
#define CCAI_CRYPTO_AES_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/types.hh"

namespace ccai::crypto
{

/** AES block size in bytes. */
constexpr size_t kAesBlockSize = 16;

/**
 * Key-expanded AES cipher. Supports 128-, 192- and 256-bit keys;
 * provides single-block encrypt/decrypt and batched CTR keystream
 * generation. Streaming modes (CTR, GCM) are layered on top in
 * gcm.hh.
 *
 * The encrypt side runs on 32-bit T-tables (four 1 KiB tables
 * combining SubBytes/ShiftRows/MixColumns), which is what makes the
 * GCM data plane fast; decrypt keeps the scalar reference rounds
 * since no hot path block-decrypts (CTR mode only ever encrypts).
 */
class Aes
{
  public:
    /** Expand @p key (16, 24 or 32 bytes). */
    explicit Aes(const Bytes &key);

    /** Encrypt one 16-byte block in place. */
    void encryptBlock(std::uint8_t block[kAesBlockSize]) const;

    /** Decrypt one 16-byte block in place. */
    void decryptBlock(std::uint8_t block[kAesBlockSize]) const;

    /**
     * Write @p nblocks consecutive CTR keystream blocks to @p out
     * (16 bytes each). The counter block is iv || be32(counter),
     * with the counter incremented per block; the IV words are
     * loaded once so no per-block counter-block memcpy is paid.
     */
    void ctrKeystream(const std::uint8_t iv[12], std::uint32_t counter,
                      std::uint8_t *out, size_t nblocks) const;

    /** Number of rounds for the configured key size (10/12/14). */
    int rounds() const { return rounds_; }

    /**
     * Expanded round-key words (big-endian, four per round,
     * rounds()+1 rounds). The SIMD GCM dispatch re-packs these into
     * the AES-NI byte layout at cipher construction.
     */
    const std::uint32_t *roundKeyWords() const
    {
        return roundKeys_.data();
    }

  private:
    /** T-table encryption of one block given as four BE words. */
    void encryptWords(std::uint32_t s0, std::uint32_t s1,
                      std::uint32_t s2, std::uint32_t s3,
                      std::uint8_t out[kAesBlockSize]) const;

    /** Round keys: (rounds+1) x 4 32-bit words. */
    std::array<std::uint32_t, 60> roundKeys_{};
    int rounds_ = 0;
};

} // namespace ccai::crypto

#endif // CCAI_CRYPTO_AES_HH
