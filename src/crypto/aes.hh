/**
 * @file
 * AES-128/192/256 block cipher (FIPS-197), software implementation.
 *
 * Simulation-grade: correct and test-vector verified, but not
 * hardened against timing side channels (table lookups are used).
 */

#ifndef CCAI_CRYPTO_AES_HH
#define CCAI_CRYPTO_AES_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/types.hh"

namespace ccai::crypto
{

/** AES block size in bytes. */
constexpr size_t kAesBlockSize = 16;

/**
 * Key-expanded AES cipher. Supports 128-, 192- and 256-bit keys;
 * provides single-block encrypt/decrypt. Streaming modes (CTR, GCM)
 * are layered on top in gcm.hh.
 */
class Aes
{
  public:
    /** Expand @p key (16, 24 or 32 bytes). */
    explicit Aes(const Bytes &key);

    /** Encrypt one 16-byte block in place. */
    void encryptBlock(std::uint8_t block[kAesBlockSize]) const;

    /** Decrypt one 16-byte block in place. */
    void decryptBlock(std::uint8_t block[kAesBlockSize]) const;

    /** Number of rounds for the configured key size (10/12/14). */
    int rounds() const { return rounds_; }

  private:
    /** Round keys: (rounds+1) x 4 32-bit words. */
    std::array<std::uint32_t, 60> roundKeys_{};
    int rounds_ = 0;
};

} // namespace ccai::crypto

#endif // CCAI_CRYPTO_AES_HH
