/**
 * @file
 * Fixed-size wall-clock worker pool for the parallel secure data
 * plane. The simulator's notion of time stays analytic (engine and
 * Adaptor timing models), but the crypto itself is real work executed
 * inside event handlers — this pool spreads that work across host
 * cores without perturbing simulated time or event order.
 *
 * Determinism contract: parallelFor() splits [0, n) into `width`
 * contiguous ranges, lane 0 runs on the calling thread, and the call
 * does not return until every index completed. Callers keep results
 * in per-index slots and commit them serially afterwards, so the
 * observable outcome is independent of worker scheduling — a seeded
 * sim replays bit-identically at any thread count.
 */

#ifndef CCAI_CRYPTO_WORKER_POOL_HH
#define CCAI_CRYPTO_WORKER_POOL_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/ring.hh"
#include "obs/stats.hh"

namespace ccai::crypto
{

/**
 * A pool of wall-clock worker threads with per-worker task rings.
 *
 * Threads are spawned lazily on the first dispatch that needs them
 * and joined in the destructor. Width (how many lanes a batch is
 * split into) is decoupled from the worker count: when a batch asks
 * for more lanes than there are workers, the extra ranges queue in
 * the rings and drain in order, so `width` is purely a decomposition
 * parameter — results never depend on the physical core count.
 */
class WorkerPool
{
  public:
    /** @param maxWorkers upper bound on spawned threads (>= 1). */
    explicit WorkerPool(int maxWorkers = defaultWorkerCount());
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /**
     * Run @p fn(i) for every i in [0, n), decomposed into @p width
     * contiguous index ranges. Lane 0 executes on the calling thread;
     * lanes 1..width-1 are pushed to the worker rings. Blocks until
     * all n indices completed. width <= 1 (or n <= 1) runs inline
     * with no pool interaction at all.
     *
     * @p fn must only touch per-index state (disjoint output slots);
     * shared mutation belongs in the serial commit after the call.
     */
    void parallelFor(std::size_t n, int width,
                     const std::function<void(std::size_t)> &fn);

    /**
     * io_uring-style submission/completion dispatch: @p n independent
     * jobs are claimed lock-free from a shared submission cursor by
     * up to @p width lanes (the caller plus worker threads), each
     * finished job is pushed to a bounded MPSC completion ring, and
     * the caller reaps completions and invokes @p commit(i) in strict
     * index order 0,1,...,n-1 regardless of completion order. Blocks
     * until every job is committed.
     *
     * Compared to parallelFor, jobs are not pre-partitioned: a slow
     * chunk does not stall its lane's remaining work, and commit
     * (the serial, order-sensitive stage) overlaps with in-flight
     * crypto instead of waiting for a full barrier. @p fn must only
     * touch per-job state; @p commit runs on the calling thread only
     * and may touch shared state.
     */
    void runJobs(std::size_t n, int width,
                 const std::function<void(std::size_t)> &fn,
                 const std::function<void(std::size_t)> &commit);

    int maxWorkers() const { return maxWorkers_; }
    /** Threads actually spawned so far. */
    int spawnedWorkers() const;

    /** Dispatched batches that actually used worker lanes. */
    std::uint64_t parallelBatches() const { return parallelBatches_; }
    /** Batches that ran inline (width or n too small). */
    std::uint64_t inlineBatches() const { return inlineBatches_; }
    /** Index ranges executed on worker threads. */
    std::uint64_t workerRanges() const { return workerRanges_; }
    /** runJobs dispatches that used the completion ring. */
    std::uint64_t jobBatches() const { return jobBatches_; }
    /** Jobs executed through runJobs (any thread). */
    std::uint64_t jobsExecuted() const { return jobsExecuted_; }
    /** Peak completion-ring occupancy across all runJobs calls. */
    std::uint64_t completionHighWatermark() const
    {
        return completionHighWater_;
    }

    /**
     * Completion-ring occupancy sampled at each reap (how many
     * finished descriptors were waiting when the caller drained).
     * Caller-thread data, like the batch counters.
     */
    const obs::Histogram &ringOccupancyHistogram() const
    {
        return ringOccupancy_;
    }

    /**
     * Wall-clock nanoseconds a task range waited in a worker ring
     * before a thread picked it up, merged across every worker's
     * private histogram on demand. Wall-clock data: report it in a
     * separate section from deterministic sim metrics — it varies
     * run to run and across host machines.
     */
    obs::Histogram queueWaitHistogram() const;

    /**
     * Zero every batch/job counter and histogram. Benches call this
     * between sweep points so each width's samples stand alone. Only
     * call from the dispatching thread with no batch in flight.
     */
    void resetStats();

    /**
     * Process-wide shared pool: the Adaptor's chunk batches and the
     * PCIe-SC's data engines all draw from one set of threads, like
     * kernel crypto worker kthreads would.
     */
    static WorkerPool &shared();

    /** hardware_concurrency with a sane floor/ceiling. */
    static int defaultWorkerCount();

  private:
    struct Batch;
    struct JobBatch;

    /** One contiguous index range of a batch, or (when `jobs` is
     * set) one claiming lane of a runJobs dispatch. */
    struct Task
    {
        Batch *batch = nullptr;
        JobBatch *jobs = nullptr;
        std::size_t begin = 0;
        std::size_t end = 0;
        /** Ring-push time for the queue-wait histogram. */
        std::chrono::steady_clock::time_point enqueued{};
    };

    /** Shared state of one parallelFor dispatch. */
    struct Batch
    {
        const std::function<void(std::size_t)> *fn = nullptr;
        std::atomic<std::size_t> pendingRanges{0};
        std::mutex doneMutex;
        std::condition_variable doneCv;
    };

    /** Shared state of one runJobs dispatch: the lock-free
     * submission cursor plus the MPSC completion ring. */
    struct JobBatch
    {
        const std::function<void(std::size_t)> *fn = nullptr;
        std::size_t n = 0;
        /** Submission cursor: lanes claim jobs with fetch_add. */
        std::atomic<std::size_t> next{0};
        /** Finished job indices; sized >= n so pushes never block. */
        MpmcRing<std::size_t> *completions = nullptr;
        /** Worker lanes still claiming (caller must outlive them). */
        std::atomic<std::size_t> pendingLanes{0};
        std::mutex doneMutex;
        std::condition_variable doneCv;
    };

    /** A worker thread and its bounded task ring. */
    struct Worker
    {
        std::thread thread;
        std::mutex mutex;
        std::condition_variable cv;
        std::vector<Task> ring; ///< FIFO; bounded by width per batch
        bool started = false;
        /** Queue-wait samples (ns); guarded by `mutex`. */
        obs::Histogram queueWaitNs;
    };

    void ensureWorker(std::size_t index);
    void workerLoop(Worker &w);
    static void runRange(const Task &task);
    /** Claim-execute-complete loop shared by workers and caller. */
    void jobLane(JobBatch &jobs);

    int maxWorkers_;
    std::vector<std::unique_ptr<Worker>> workers_;
    std::atomic<bool> stopping_{false};

    std::uint64_t parallelBatches_ = 0; ///< dispatch-side, caller thread
    std::uint64_t inlineBatches_ = 0;
    std::atomic<std::uint64_t> workerRanges_{0};
    std::uint64_t jobBatches_ = 0; ///< dispatch-side, caller thread
    std::atomic<std::uint64_t> jobsExecuted_{0};
    std::uint64_t completionHighWater_ = 0;
    obs::Histogram ringOccupancy_; ///< caller-thread reap samples
};

} // namespace ccai::crypto

#endif // CCAI_CRYPTO_WORKER_POOL_HH
