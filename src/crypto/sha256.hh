/**
 * @file
 * SHA-256 (FIPS 180-4) with streaming interface, plus HMAC-SHA256 and
 * a simple HKDF-style key derivation.
 */

#ifndef CCAI_CRYPTO_SHA256_HH
#define CCAI_CRYPTO_SHA256_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace ccai::crypto
{

constexpr size_t kSha256DigestSize = 32;

/** Streaming SHA-256 hasher. */
class Sha256
{
  public:
    Sha256() { reset(); }

    /** Restore initial state. */
    void reset();

    /** Absorb @p len bytes. */
    void update(const std::uint8_t *data, size_t len);
    void update(const Bytes &data) { update(data.data(), data.size()); }

    /** Finish and return the 32-byte digest. */
    Bytes finalize();

    /** One-shot convenience. */
    static Bytes digest(const Bytes &data);
    static Bytes digest(const std::string &data);

  private:
    void processBlock(const std::uint8_t block[64]);

    std::array<std::uint32_t, 8> state_{};
    std::uint64_t totalLen_ = 0;
    std::uint8_t buffer_[64] = {};
    size_t bufferLen_ = 0;
};

/** HMAC-SHA256 (RFC 2104). */
Bytes hmacSha256(const Bytes &key, const Bytes &message);

/**
 * Derive @p length bytes of key material from input keying material,
 * salt and context info (HKDF-like extract+expand on HMAC-SHA256).
 */
Bytes kdf(const Bytes &ikm, const Bytes &salt, const std::string &info,
          size_t length);

} // namespace ccai::crypto

#endif // CCAI_CRYPTO_SHA256_HH
