/**
 * @file
 * Chassis sealing (paper §6): the PCIe-SC, xPU, and their internal
 * PCIe connection live inside a sealed chassis instrumented with
 * physical sensors. The HRoT-Blade polls the sensors over an I2C
 * bus and extends the sealing PCR whenever the status changes, so a
 * remote verifier can detect physical tampering during computation.
 */

#ifndef CCAI_TRUST_SEALING_HH
#define CCAI_TRUST_SEALING_HH

#include <string>
#include <vector>

#include "sim/sim_object.hh"
#include "trust/hrot.hh"

namespace ccai::trust
{

/** Kind of physical sensor inside the chassis. */
enum class SensorKind
{
    Pressure,
    Temperature,
    Intrusion,
};

/** One physical sensor with a nominal operating window. */
struct Sensor
{
    std::string name;
    SensorKind kind;
    double minOk;
    double maxOk;
    double value;

    bool
    withinLimits() const
    {
        return value >= minOk && value <= maxOk;
    }
};

/**
 * The sealed chassis and its sensor poller. Polling runs on the
 * event queue at a fixed period, mirroring the I2C retrieval loop.
 */
class ChassisSealing : public sim::SimObject
{
  public:
    ChassisSealing(sim::System &sys, std::string name, HrotBlade &blade,
                   Tick pollPeriod = 10 * kTicksPerMs);

    /** Install a sensor; returns its index. */
    size_t addSensor(const Sensor &sensor);

    /** Begin periodic polling. */
    void start();

    /** Attack hook: force a sensor reading (physical tamper). */
    void injectReading(size_t sensorIndex, double value);

    /** True once any poll has observed an out-of-limits sensor. */
    bool tamperDetected() const { return tampered_; }

    /** Perform one poll immediately (tests drive this directly). */
    void pollOnce();

    const std::vector<Sensor> &sensors() const { return sensors_; }

  private:
    Bytes statusDigest() const;

    HrotBlade &blade_;
    Tick pollPeriod_;
    std::vector<Sensor> sensors_;
    bool tampered_ = false;
    bool started_ = false;
    Bytes lastDigest_;
    /** Owned poll timer, re-armed in place each period. */
    sim::EventFunctionWrapper pollTimer_;
};

} // namespace ccai::trust

#endif // CCAI_TRUST_SEALING_HH
