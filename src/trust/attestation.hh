/**
 * @file
 * Remote attestation protocol (paper Figure 6): a four-step exchange
 * between the user's verifier and the ccAI platform.
 *
 *  1. Diffie-Hellman key exchange establishes a SessionKey.
 *  2. The verifier fetches AK/EK certificates and validates them
 *     against the corporate Root CA.
 *  3. The verifier sends a challenge (KeyID for xPU selection, PCR
 *     selection, random nonce), which the TVM forwards to both the
 *     CPU-side HRoT and the HRoT-Blade.
 *  4. Each HRoT signs the selected PCRs with its AK; the verifier
 *     validates nonce, signatures, and PCR values against its
 *     reference database.
 */

#ifndef CCAI_TRUST_ATTESTATION_HH
#define CCAI_TRUST_ATTESTATION_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "crypto/gcm.hh"
#include "trust/hrot.hh"

namespace ccai::trust
{

/** The challenge of step 3 (encrypted under the SessionKey). */
struct Challenge
{
    std::uint32_t keyId = 0; ///< which xPU set to attest
    std::vector<size_t> pcrSelection;
    Bytes nonce;
};

/** Everything the platform returns in step 4. */
struct AttestationReport
{
    Quote cpuQuote;
    Quote bladeQuote;
};

/** Outcome of a verification run, with the reason for any failure. */
struct VerifyResult
{
    bool ok = false;
    std::string reason;
};

/**
 * Platform side: owns the two HRoTs and answers challenges.
 */
class AttestationResponder
{
  public:
    AttestationResponder(HrotBlade &cpuHrot, HrotBlade &blade,
                         sim::Rng &rng);

    /** Step 1: platform half of the DH exchange. */
    const crypto::BigInt &dhPublic() const { return dh_.pub; }
    Bytes sessionSecret(const crypto::BigInt &peerPub) const;

    /** Step 2: certificates for the verifier. */
    const Certificate &cpuAkCert() const;
    const Certificate &bladeAkCert() const;
    const Certificate &cpuEkCert() const;
    const Certificate &bladeEkCert() const;

    /** Steps 3-4: answer a challenge with quotes from both HRoTs. */
    AttestationReport respond(const Challenge &challenge);

  private:
    HrotBlade &cpuHrot_;
    HrotBlade &blade_;
    sim::Rng &rng_;
    crypto::KeyPair dh_;
};

/**
 * User side: drives the protocol and checks every signature and the
 * PCR values against golden references.
 */
class AttestationVerifier
{
  public:
    AttestationVerifier(const RootCa &ca, sim::Rng &rng);

    /** Step 1: verifier half of the DH exchange. */
    const crypto::BigInt &dhPublic() const { return dh_.pub; }
    Bytes sessionSecret(const crypto::BigInt &peerPub) const;

    /** Record the PCR value the verifier expects. */
    void expectPcr(size_t index, const Bytes &value);

    /** Build a fresh challenge with a random nonce. */
    Challenge makeChallenge(std::uint32_t keyId,
                            const std::vector<size_t> &pcrSelection);

    /**
     * Full verification of a report: certificate chains, quote
     * signatures, nonce freshness, and expected PCR values.
     */
    VerifyResult verifyReport(const AttestationReport &report,
                              const Challenge &challenge,
                              const AttestationResponder &responder);

  private:
    VerifyResult verifyQuoteChain(const Quote &quote,
                                  const Challenge &challenge,
                                  const Certificate &ekCert,
                                  const Certificate &akCert,
                                  const std::string &who);

    const RootCa &ca_;
    sim::Rng &rng_;
    crypto::KeyPair dh_;
    std::map<size_t, Bytes> expectedPcrs_;
};

} // namespace ccai::trust

#endif // CCAI_TRUST_ATTESTATION_HH
