/**
 * @file
 * Platform Configuration Registers: TPM-style measurement registers.
 * A PCR can only be extended (new = SHA256(old || digest)), never
 * written, so a measurement log is tamper-evident.
 */

#ifndef CCAI_TRUST_PCR_HH
#define CCAI_TRUST_PCR_HH

#include <array>
#include <string>
#include <vector>

#include "common/types.hh"
#include "crypto/sha256.hh"

namespace ccai::trust
{

/** Number of PCRs in a bank (TPM 2.0 convention). */
constexpr size_t kNumPcrs = 24;

/** Indices with fixed roles in ccAI's chain of trust. */
namespace pcridx
{
constexpr size_t kCpuFirmware = 0;   ///< CPU-side HRoT measurements
constexpr size_t kTvmImage = 1;      ///< TVM kernel + Adaptor
constexpr size_t kScBitstream = 8;   ///< PCIe-SC Packet Filter RTL
constexpr size_t kScFirmware = 9;    ///< PCIe-SC management firmware
constexpr size_t kXpuFirmware = 10;  ///< attached xPU firmware
constexpr size_t kSealingStatus = 16;///< chassis sensor status (§6)
} // namespace pcridx

/** One entry of the measurement log. */
struct MeasurementEvent
{
    size_t pcrIndex;
    std::string description;
    Bytes digest;
};

/**
 * A bank of extend-only registers plus the event log needed to
 * replay/verify them.
 */
class PcrBank
{
  public:
    PcrBank();

    /** Extend @p pcr with @p digest, appending to the event log. */
    void extend(size_t pcr, const Bytes &digest,
                const std::string &description);

    /** Current value of a register. */
    const Bytes &value(size_t pcr) const;

    /** Select a subset of registers (for quotes). */
    std::vector<Bytes> select(const std::vector<size_t> &indices) const;

    /** Composite digest over a selection (what quotes sign). */
    Bytes compositeDigest(const std::vector<size_t> &indices) const;

    const std::vector<MeasurementEvent> &eventLog() const
    {
        return log_;
    }

    /**
     * Replay the event log from reset values and confirm it
     * reproduces the current registers (tamper evidence).
     */
    bool replayMatches() const;

    /** Reset all registers to zero and clear the log. */
    void clear();

  private:
    std::array<Bytes, kNumPcrs> pcrs_;
    std::vector<MeasurementEvent> log_;
};

} // namespace ccai::trust

#endif // CCAI_TRUST_PCR_HH
