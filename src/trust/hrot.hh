/**
 * @file
 * HRoT-Blade: the hardware root-of-trust module of the PCIe-SC
 * (paper §6). A TPM-compatible component holding the Endorsement Key
 * (vendor-installed), the Attestation Key (generated at each boot),
 * the PCR bank, and the quote operation used by remote attestation.
 * The same class also models the CPU-side HRoT.
 */

#ifndef CCAI_TRUST_HROT_HH
#define CCAI_TRUST_HROT_HH

#include <string>
#include <vector>

#include "crypto/dh.hh"
#include "crypto/drbg.hh"
#include "trust/pcr.hh"

namespace ccai::trust
{

/**
 * A certificate binding a public key to an identity, signed by an
 * issuer (the corporate Root CA or the EK).
 */
struct Certificate
{
    std::string subject;
    crypto::BigInt publicKey;
    crypto::Signature issuerSignature;

    /** The byte string the issuer signs. */
    Bytes tbs() const;
};

/** A signed PCR quote (report r and S(r) of Figure 6). */
struct Quote
{
    Bytes nonce;
    std::vector<size_t> pcrSelection;
    std::vector<Bytes> pcrValues;
    crypto::Signature pcrSignature;  ///< S(PCRs)
    crypto::Signature reportSignature; ///< S(r)

    /** Serialized (nonce, selection, values, S(PCRs)) = report r. */
    Bytes reportBytes() const;
};

/**
 * Root Certificate Authority of the hardware vendor. Issues EK
 * certificates at manufacturing time.
 */
class RootCa
{
  public:
    explicit RootCa(sim::Rng &rng);

    /** Issue a certificate for @p subject's public key. */
    Certificate issue(const std::string &subject,
                      const crypto::BigInt &publicKey, sim::Rng &rng);

    /** Verify a certificate chains to this CA. */
    bool verify(const Certificate &cert) const;

    const crypto::BigInt &publicKey() const { return keys_.pub; }

  private:
    crypto::KeyPair keys_;
};

/**
 * The HRoT-Blade. Construction models manufacturing (EK install);
 * boot() models power-on (AK generation).
 */
class HrotBlade
{
  public:
    HrotBlade(const std::string &name, RootCa &ca, sim::Rng &rng);

    /** Power-on: generate a fresh AK and certify it with the EK. */
    void boot(sim::Rng &rng);

    PcrBank &pcrs() { return pcrs_; }
    const PcrBank &pcrs() const { return pcrs_; }

    /** Sign a PCR selection + nonce with the AK (Figure 6 step 4). */
    Quote quote(const Bytes &nonce,
                const std::vector<size_t> &pcrSelection,
                sim::Rng &rng) const;

    /** Verify a quote against an AK public key. */
    static bool verifyQuote(const Quote &q, const crypto::BigInt &akPub);

    const Certificate &ekCertificate() const { return ekCert_; }
    const Certificate &akCertificate() const;
    const crypto::BigInt &akPublic() const;

    /** DH key pair for session establishment. */
    crypto::KeyPair makeSessionKeys(sim::Rng &rng) const;

    bool booted() const { return booted_; }

    /**
     * Crash-recovery fault domain: a spontaneous reboot. The AK (and
     * any session state derived from it) dies with the power rail;
     * quote/makeSessionKeys callers must re-boot() before trusting
     * the blade again. PCR values survive in the model (they are
     * re-extended during recovery's secure-boot replay anyway).
     */
    void crash() { booted_ = false; }

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    crypto::KeyPair ek_;
    Certificate ekCert_;
    crypto::KeyPair ak_;
    Certificate akCert_;
    bool booted_ = false;
    PcrBank pcrs_;
};

} // namespace ccai::trust

#endif // CCAI_TRUST_HROT_HH
