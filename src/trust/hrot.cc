#include "hrot.hh"

#include "common/logging.hh"

namespace ccai::trust
{

Bytes
Certificate::tbs() const
{
    Bytes out(subject.begin(), subject.end());
    Bytes key = publicKey.toBytes(32);
    out.insert(out.end(), key.begin(), key.end());
    return out;
}

Bytes
Quote::reportBytes() const
{
    Bytes out = nonce;
    for (size_t idx : pcrSelection)
        out.push_back(static_cast<std::uint8_t>(idx));
    for (const Bytes &v : pcrValues)
        out.insert(out.end(), v.begin(), v.end());
    Bytes sig = pcrSignature.serialize();
    out.insert(out.end(), sig.begin(), sig.end());
    return out;
}

RootCa::RootCa(sim::Rng &rng) : keys_(crypto::generateKeyPair(rng)) {}

Certificate
RootCa::issue(const std::string &subject, const crypto::BigInt &publicKey,
              sim::Rng &rng)
{
    Certificate cert;
    cert.subject = subject;
    cert.publicKey = publicKey;
    cert.issuerSignature = crypto::sign(keys_.priv, cert.tbs(), rng);
    return cert;
}

bool
RootCa::verify(const Certificate &cert) const
{
    return crypto::verify(keys_.pub, cert.tbs(), cert.issuerSignature);
}

HrotBlade::HrotBlade(const std::string &name, RootCa &ca, sim::Rng &rng)
    : name_(name), ek_(crypto::generateKeyPair(rng)),
      ekCert_(ca.issue(name + ".ek", ek_.pub, rng))
{
}

void
HrotBlade::boot(sim::Rng &rng)
{
    // Fresh attestation key at each boot, certified by the EK: the
    // verifier checks EK (vendor CA) -> AK (EK) -> quote (AK).
    ak_ = crypto::generateKeyPair(rng);
    akCert_.subject = name_ + ".ak";
    akCert_.publicKey = ak_.pub;
    akCert_.issuerSignature = crypto::sign(ek_.priv, akCert_.tbs(), rng);
    booted_ = true;
}

const Certificate &
HrotBlade::akCertificate() const
{
    if (!booted_)
        fatal("HRoT %s: AK requested before boot", name_.c_str());
    return akCert_;
}

const crypto::BigInt &
HrotBlade::akPublic() const
{
    if (!booted_)
        fatal("HRoT %s: AK requested before boot", name_.c_str());
    return ak_.pub;
}

Quote
HrotBlade::quote(const Bytes &nonce,
                 const std::vector<size_t> &pcrSelection,
                 sim::Rng &rng) const
{
    if (!booted_)
        fatal("HRoT %s: quote before boot", name_.c_str());

    Quote q;
    q.nonce = nonce;
    q.pcrSelection = pcrSelection;
    q.pcrValues = pcrs_.select(pcrSelection);

    // S(PCRs): sign the composite digest of the selected registers.
    Bytes composite = pcrs_.compositeDigest(pcrSelection);
    q.pcrSignature = crypto::sign(ak_.priv, composite, rng);

    // S(r): sign the whole report (nonce + selection + values +
    // S(PCRs)) so the verifier detects any substitution.
    q.reportSignature = crypto::sign(ak_.priv, q.reportBytes(), rng);
    return q;
}

bool
HrotBlade::verifyQuote(const Quote &q, const crypto::BigInt &akPub)
{
    // Recompute the composite from the reported values.
    crypto::Sha256 h;
    for (size_t i = 0; i < q.pcrSelection.size(); ++i) {
        std::uint8_t idx = static_cast<std::uint8_t>(q.pcrSelection[i]);
        h.update(&idx, 1);
        h.update(q.pcrValues[i]);
    }
    Bytes composite = h.finalize();
    if (!crypto::verify(akPub, composite, q.pcrSignature))
        return false;
    return crypto::verify(akPub, q.reportBytes(), q.reportSignature);
}

crypto::KeyPair
HrotBlade::makeSessionKeys(sim::Rng &rng) const
{
    return crypto::generateKeyPair(rng);
}

} // namespace ccai::trust
