#include "secure_boot.hh"

#include "common/logging.hh"

namespace ccai::trust
{

void
ExternalFlash::store(const std::string &name, size_t pcr_index,
                     const Bytes &plaintext,
                     const crypto::AesGcm &flash_key, crypto::Drbg &drbg)
{
    FlashImage img;
    img.name = name;
    img.pcrIndex = pcr_index;
    img.iv = drbg.generateIv();
    crypto::Sealed sealed = flash_key.seal(img.iv, plaintext);
    img.ciphertext = std::move(sealed.ciphertext);
    img.tag = std::move(sealed.tag);
    images_.push_back(std::move(img));
}

void
ExternalFlash::tamper(const std::string &name)
{
    for (FlashImage &img : images_) {
        if (img.name == name && !img.ciphertext.empty()) {
            img.ciphertext[0] ^= 0xff;
            return;
        }
    }
    fatal("ExternalFlash::tamper: no image named '%s'", name.c_str());
}

SecureBoot::SecureBoot(HrotBlade &hrot, const crypto::AesGcm &flash_key)
    : hrot_(hrot), flashKey_(flash_key)
{
}

BootResult
SecureBoot::boot(const ExternalFlash &flash)
{
    BootResult result;
    for (const FlashImage &img : flash.images()) {
        auto plaintext =
            flashKey_.open(img.iv, img.ciphertext, img.tag);
        if (!plaintext) {
            result.failure = img.name + ": decryption/integrity failed";
            warn("secure boot: %s", result.failure.c_str());
            return result;
        }

        Bytes digest = crypto::Sha256::digest(*plaintext);
        auto golden = golden_.find(img.name);
        if (golden != golden_.end() && golden->second != digest) {
            result.failure = img.name + ": measurement mismatch";
            warn("secure boot: %s", result.failure.c_str());
            return result;
        }

        hrot_.pcrs().extend(img.pcrIndex, digest, img.name);
        result.loadedComponents.push_back(img.name);
    }
    result.success = true;
    return result;
}

} // namespace ccai::trust
