#include "pcr.hh"

#include "common/logging.hh"

namespace ccai::trust
{

PcrBank::PcrBank()
{
    clear();
}

void
PcrBank::clear()
{
    for (auto &pcr : pcrs_)
        pcr.assign(crypto::kSha256DigestSize, 0);
    log_.clear();
}

void
PcrBank::extend(size_t pcr, const Bytes &digest,
                const std::string &description)
{
    if (pcr >= kNumPcrs)
        fatal("PCR index %zu out of range", pcr);
    if (digest.size() != crypto::kSha256DigestSize)
        fatal("PCR extend expects a 32-byte digest");

    Bytes input = pcrs_[pcr];
    input.insert(input.end(), digest.begin(), digest.end());
    pcrs_[pcr] = crypto::Sha256::digest(input);
    log_.push_back({pcr, description, digest});
}

const Bytes &
PcrBank::value(size_t pcr) const
{
    if (pcr >= kNumPcrs)
        fatal("PCR index %zu out of range", pcr);
    return pcrs_[pcr];
}

std::vector<Bytes>
PcrBank::select(const std::vector<size_t> &indices) const
{
    std::vector<Bytes> out;
    out.reserve(indices.size());
    for (size_t i : indices)
        out.push_back(value(i));
    return out;
}

Bytes
PcrBank::compositeDigest(const std::vector<size_t> &indices) const
{
    crypto::Sha256 h;
    for (size_t i : indices) {
        std::uint8_t idx = static_cast<std::uint8_t>(i);
        h.update(&idx, 1);
        h.update(value(i));
    }
    return h.finalize();
}

bool
PcrBank::replayMatches() const
{
    std::array<Bytes, kNumPcrs> replay;
    for (auto &pcr : replay)
        pcr.assign(crypto::kSha256DigestSize, 0);
    for (const MeasurementEvent &ev : log_) {
        Bytes input = replay[ev.pcrIndex];
        input.insert(input.end(), ev.digest.begin(), ev.digest.end());
        replay[ev.pcrIndex] = crypto::Sha256::digest(input);
    }
    for (size_t i = 0; i < kNumPcrs; ++i) {
        if (replay[i] != pcrs_[i])
            return false;
    }
    return true;
}

} // namespace ccai::trust
