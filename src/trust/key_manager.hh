/**
 * @file
 * Workload key management (paper §6): the TVM and the PCIe-SC share
 * symmetric AES keys derived from the attestation session secret.
 * IVs are counter-based and never reused; when the counter space
 * approaches exhaustion the manager rotates to a fresh key (the
 * H100-style mitigation the paper cites for IV-reuse attacks). Keys
 * are destroyed when the session ends.
 */

#ifndef CCAI_TRUST_KEY_MANAGER_HH
#define CCAI_TRUST_KEY_MANAGER_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>

#include "crypto/drbg.hh"
#include "crypto/gcm.hh"

namespace ccai::trust
{

/** Direction of a protected stream (separate keys per direction). */
enum class StreamDir
{
    HostToDevice,
    DeviceToHost,
};

/** A key epoch: key material plus the IV counter window. */
struct KeyEpoch
{
    std::uint32_t epochId = 0;
    Bytes key;             ///< AES-128 key
    Bytes ivPrefix;        ///< 8-byte random prefix of the 12-byte IV
    std::uint32_t ivCounter = 0;
};

/**
 * Manages the per-direction key epochs for one confidential session.
 * Both endpoints (Adaptor and PCIe-SC) run one instance seeded from
 * the same session secret, so their derived keys and IV sequences
 * agree without further communication.
 */
class WorkloadKeyManager
{
  public:
    /**
     * @param sessionSecret shared secret from attestation (step 1).
     * @param ivExhaustionLimit counter value that triggers rotation;
     *        tiny values are used in tests to exercise rotation.
     */
    explicit WorkloadKeyManager(const Bytes &sessionSecret,
                                std::uint32_t ivExhaustionLimit =
                                    0xffff0000u);

    /**
     * Next IV for @p dir; rotates the epoch first when the counter
     * window is exhausted.
     */
    Bytes nextIv(StreamDir dir);

    /** Current key for @p dir. */
    const Bytes &key(StreamDir dir) const;

    /** Current epoch id for @p dir (tests observe rotations). */
    std::uint32_t epochId(StreamDir dir) const;

    /** A GCM context for the current epoch of @p dir. */
    crypto::AesGcm cipher(StreamDir dir) const;

    /**
     * Key for an arbitrary epoch. Epoch keys are derived statelessly
     * from the session secret, so the consuming endpoint can decrypt
     * chunks produced under any epoch the producer has rotated to.
     */
    Bytes keyForEpoch(StreamDir dir, std::uint32_t epoch) const;

    /** GCM context for an arbitrary epoch of @p dir. */
    crypto::AesGcm cipherForEpoch(StreamDir dir,
                                  std::uint32_t epoch) const;

    /**
     * Cached GCM context for an epoch of @p dir. The first use of
     * an epoch pays the key-schedule + GHASH-table construction;
     * subsequent chunks of the same epoch reuse it. The cache keeps
     * a small window of recent epochs per direction — on an
     * IV-exhaustion rotation, entries older than the window are
     * invalidated (a later request for them re-derives statelessly,
     * so past-epoch chunks still decrypt). The reference stays valid
     * until the next rotation of @p dir or destroy().
     *
     * Thread-safety: the cache is sharded per direction into fixed
     * epoch slots guarded by a published-tag atomic, so a hit is a
     * wait-free read — many crypto workers can resolve the cipher
     * for in-flight descriptors concurrently without a shared lock.
     * Misses (first use of an epoch) serialize on the shard's fill
     * mutex; rotation/eviction runs on the submission thread between
     * batches, never while workers hold references.
     */
    const crypto::AesGcm &cipherCached(StreamDir dir,
                                       std::uint32_t epoch) const;

    /** Number of live cache entries (tests observe invalidation). */
    size_t cachedCipherCount() const;

    /** Zeroize all key material (end of session, §6). */
    void destroy();

    bool destroyed() const { return destroyed_; }

  private:
    /** Epochs per direction the cipher cache retains past the
     * current one; older entries are evicted on rotation. */
    static constexpr std::uint32_t kCipherCacheDepth = 2;

    KeyEpoch &epoch(StreamDir dir);
    const KeyEpoch &epoch(StreamDir dir) const;
    void rotate(StreamDir dir);
    void deriveEpoch(KeyEpoch &e, StreamDir dir);

    /** Epoch slots per direction shard; with retention depth 2 the
     * live window never collides modulo this. */
    static constexpr size_t kCipherSlots = 8;
    /** Slot tag: 0 = empty, else kSlotReady | epoch. */
    static constexpr std::uint64_t kSlotReady = 1ull << 63;

    /**
     * One cached cipher context. `tag` publishes the slot: a reader
     * that observes kSlotReady|epoch with acquire ordering may use
     * `cipher` without locking (the release store in the filler
     * happens-after construction completes).
     */
    struct CipherSlot
    {
        std::atomic<std::uint64_t> tag{0};
        std::unique_ptr<crypto::AesGcm> cipher;
    };

    /** Per-direction shard: H2D and D2H workers never contend. */
    struct CipherShard
    {
        std::mutex fill; ///< serializes misses/evictions only
        std::array<CipherSlot, kCipherSlots> slots;
    };

    static size_t
    shardIndex(StreamDir dir)
    {
        return dir == StreamDir::HostToDevice ? 0 : 1;
    }

    Bytes master_;
    KeyEpoch h2d_;
    KeyEpoch d2h_;
    std::uint32_t ivLimit_;
    bool destroyed_ = false;
    mutable std::array<CipherShard, 2> cipherShards_;
};

} // namespace ccai::trust

#endif // CCAI_TRUST_KEY_MANAGER_HH
