#include "key_manager.hh"

#include "common/bytes_util.hh"
#include "common/logging.hh"

namespace ccai::trust
{

WorkloadKeyManager::WorkloadKeyManager(const Bytes &sessionSecret,
                                       std::uint32_t ivExhaustionLimit)
    : master_(sessionSecret), ivLimit_(ivExhaustionLimit)
{
    h2d_.epochId = 0;
    d2h_.epochId = 0;
    deriveEpoch(h2d_, StreamDir::HostToDevice);
    deriveEpoch(d2h_, StreamDir::DeviceToHost);
}

KeyEpoch &
WorkloadKeyManager::epoch(StreamDir dir)
{
    return dir == StreamDir::HostToDevice ? h2d_ : d2h_;
}

const KeyEpoch &
WorkloadKeyManager::epoch(StreamDir dir) const
{
    return dir == StreamDir::HostToDevice ? h2d_ : d2h_;
}

void
WorkloadKeyManager::deriveEpoch(KeyEpoch &e, StreamDir dir)
{
    // Stateless derivation from the session secret: epoch N of a
    // direction always yields the same key, so the Adaptor and the
    // PCIe-SC agree without further communication and either side
    // can reconstruct past-epoch keys for in-flight chunks.
    std::string label =
        (dir == StreamDir::HostToDevice ? "h2d-" : "d2h-") +
        std::to_string(e.epochId);
    Bytes keyed = crypto::kdf(master_, {}, "ccai-epoch-" + label, 24);
    e.key.assign(keyed.begin(), keyed.begin() + 16);
    e.ivPrefix.assign(keyed.begin() + 16, keyed.end());
    e.ivCounter = 0;
}

Bytes
WorkloadKeyManager::keyForEpoch(StreamDir dir, std::uint32_t epoch) const
{
    if (destroyed_)
        fatal("WorkloadKeyManager: use after destroy()");
    std::string label =
        (dir == StreamDir::HostToDevice ? "h2d-" : "d2h-") +
        std::to_string(epoch);
    Bytes keyed = crypto::kdf(master_, {}, "ccai-epoch-" + label, 24);
    return Bytes(keyed.begin(), keyed.begin() + 16);
}

crypto::AesGcm
WorkloadKeyManager::cipherForEpoch(StreamDir dir,
                                   std::uint32_t epoch) const
{
    return crypto::AesGcm(keyForEpoch(dir, epoch));
}

namespace
{

std::uint64_t
cacheKey(StreamDir dir, std::uint32_t epoch)
{
    return (static_cast<std::uint64_t>(dir) << 32) | epoch;
}

} // namespace

const crypto::AesGcm &
WorkloadKeyManager::cipherCached(StreamDir dir,
                                 std::uint32_t epoch) const
{
    if (destroyed_)
        fatal("WorkloadKeyManager: use after destroy()");
    std::uint64_t k = cacheKey(dir, epoch);
    auto it = cipherCache_.find(k);
    if (it == cipherCache_.end()) {
        // Miss: pay key derivation + key schedule + GHASH table once.
        it = cipherCache_
                 .try_emplace(k, keyForEpoch(dir, epoch))
                 .first;
    }
    return it->second;
}

void
WorkloadKeyManager::rotate(StreamDir dir)
{
    KeyEpoch &e = epoch(dir);
    ++e.epochId;
    deriveEpoch(e, dir);

    // Invalidate cached ciphers for this direction that fell out of
    // the retention window; in-flight chunks from a recent epoch
    // still hit the cache, anything older re-derives on demand.
    std::uint32_t floor = e.epochId > kCipherCacheDepth
                              ? e.epochId - kCipherCacheDepth
                              : 0;
    auto begin = cipherCache_.lower_bound(cacheKey(dir, 0));
    auto end = cipherCache_.lower_bound(cacheKey(dir, floor));
    cipherCache_.erase(begin, end);
}

Bytes
WorkloadKeyManager::nextIv(StreamDir dir)
{
    if (destroyed_)
        fatal("WorkloadKeyManager: use after destroy()");
    KeyEpoch &e = epoch(dir);
    if (e.ivCounter >= ivLimit_)
        rotate(dir);
    Bytes iv = e.ivPrefix; // 8 bytes
    iv.resize(12);
    storeBe32(iv.data() + 8, e.ivCounter++);
    return iv;
}

const Bytes &
WorkloadKeyManager::key(StreamDir dir) const
{
    if (destroyed_)
        fatal("WorkloadKeyManager: use after destroy()");
    return epoch(dir).key;
}

std::uint32_t
WorkloadKeyManager::epochId(StreamDir dir) const
{
    return epoch(dir).epochId;
}

crypto::AesGcm
WorkloadKeyManager::cipher(StreamDir dir) const
{
    return crypto::AesGcm(key(dir));
}

void
WorkloadKeyManager::destroy()
{
    std::fill(master_.begin(), master_.end(), 0);
    for (KeyEpoch *e : {&h2d_, &d2h_}) {
        std::fill(e->key.begin(), e->key.end(), 0);
        std::fill(e->ivPrefix.begin(), e->ivPrefix.end(), 0);
        e->ivCounter = 0;
    }
    // Cached contexts hold expanded key schedules; drop them with
    // the rest of the key material.
    cipherCache_.clear();
    destroyed_ = true;
}

} // namespace ccai::trust
