#include "key_manager.hh"

#include "common/bytes_util.hh"
#include "common/logging.hh"

namespace ccai::trust
{

WorkloadKeyManager::WorkloadKeyManager(const Bytes &sessionSecret,
                                       std::uint32_t ivExhaustionLimit)
    : master_(sessionSecret), ivLimit_(ivExhaustionLimit)
{
    h2d_.epochId = 0;
    d2h_.epochId = 0;
    deriveEpoch(h2d_, StreamDir::HostToDevice);
    deriveEpoch(d2h_, StreamDir::DeviceToHost);
}

KeyEpoch &
WorkloadKeyManager::epoch(StreamDir dir)
{
    return dir == StreamDir::HostToDevice ? h2d_ : d2h_;
}

const KeyEpoch &
WorkloadKeyManager::epoch(StreamDir dir) const
{
    return dir == StreamDir::HostToDevice ? h2d_ : d2h_;
}

void
WorkloadKeyManager::deriveEpoch(KeyEpoch &e, StreamDir dir)
{
    // Stateless derivation from the session secret: epoch N of a
    // direction always yields the same key, so the Adaptor and the
    // PCIe-SC agree without further communication and either side
    // can reconstruct past-epoch keys for in-flight chunks.
    std::string label =
        (dir == StreamDir::HostToDevice ? "h2d-" : "d2h-") +
        std::to_string(e.epochId);
    Bytes keyed = crypto::kdf(master_, {}, "ccai-epoch-" + label, 24);
    e.key.assign(keyed.begin(), keyed.begin() + 16);
    e.ivPrefix.assign(keyed.begin() + 16, keyed.end());
    e.ivCounter = 0;
}

Bytes
WorkloadKeyManager::keyForEpoch(StreamDir dir, std::uint32_t epoch) const
{
    if (destroyed_)
        fatal("WorkloadKeyManager: use after destroy()");
    std::string label =
        (dir == StreamDir::HostToDevice ? "h2d-" : "d2h-") +
        std::to_string(epoch);
    Bytes keyed = crypto::kdf(master_, {}, "ccai-epoch-" + label, 24);
    return Bytes(keyed.begin(), keyed.begin() + 16);
}

crypto::AesGcm
WorkloadKeyManager::cipherForEpoch(StreamDir dir,
                                   std::uint32_t epoch) const
{
    return crypto::AesGcm(keyForEpoch(dir, epoch));
}

const crypto::AesGcm &
WorkloadKeyManager::cipherCached(StreamDir dir,
                                 std::uint32_t epoch) const
{
    if (destroyed_)
        fatal("WorkloadKeyManager: use after destroy()");
    CipherShard &shard = cipherShards_[shardIndex(dir)];
    CipherSlot &slot = shard.slots[epoch % kCipherSlots];
    const std::uint64_t want = kSlotReady | epoch;
    // Hot path: published slot for this exact epoch — wait-free.
    if (slot.tag.load(std::memory_order_acquire) == want)
        return *slot.cipher;

    // Miss (or slot recycled by a far-future epoch): pay key
    // derivation + key schedule + GHASH table once under the shard
    // fill lock, then publish with release so concurrent readers of
    // the tag see a fully constructed cipher.
    std::lock_guard<std::mutex> guard(shard.fill);
    if (slot.tag.load(std::memory_order_relaxed) == want)
        return *slot.cipher;
    slot.tag.store(0, std::memory_order_relaxed);
    slot.cipher =
        std::make_unique<crypto::AesGcm>(keyForEpoch(dir, epoch));
    slot.tag.store(want, std::memory_order_release);
    return *slot.cipher;
}

size_t
WorkloadKeyManager::cachedCipherCount() const
{
    size_t n = 0;
    for (const CipherShard &shard : cipherShards_)
        for (const CipherSlot &slot : shard.slots)
            if (slot.tag.load(std::memory_order_relaxed) != 0)
                ++n;
    return n;
}

void
WorkloadKeyManager::rotate(StreamDir dir)
{
    KeyEpoch &e = epoch(dir);
    ++e.epochId;
    deriveEpoch(e, dir);

    // Invalidate cached ciphers for this direction that fell out of
    // the retention window; in-flight chunks from a recent epoch
    // still hit the cache, anything older re-derives on demand.
    std::uint32_t floor = e.epochId > kCipherCacheDepth
                              ? e.epochId - kCipherCacheDepth
                              : 0;
    CipherShard &shard = cipherShards_[shardIndex(dir)];
    std::lock_guard<std::mutex> guard(shard.fill);
    for (CipherSlot &slot : shard.slots) {
        std::uint64_t tag = slot.tag.load(std::memory_order_relaxed);
        if (tag != 0 && (tag & ~kSlotReady) < floor) {
            slot.tag.store(0, std::memory_order_relaxed);
            slot.cipher.reset();
        }
    }
}

Bytes
WorkloadKeyManager::nextIv(StreamDir dir)
{
    if (destroyed_)
        fatal("WorkloadKeyManager: use after destroy()");
    KeyEpoch &e = epoch(dir);
    if (e.ivCounter >= ivLimit_)
        rotate(dir);
    Bytes iv = e.ivPrefix; // 8 bytes
    iv.resize(12);
    storeBe32(iv.data() + 8, e.ivCounter++);
    return iv;
}

const Bytes &
WorkloadKeyManager::key(StreamDir dir) const
{
    if (destroyed_)
        fatal("WorkloadKeyManager: use after destroy()");
    return epoch(dir).key;
}

std::uint32_t
WorkloadKeyManager::epochId(StreamDir dir) const
{
    return epoch(dir).epochId;
}

crypto::AesGcm
WorkloadKeyManager::cipher(StreamDir dir) const
{
    return crypto::AesGcm(key(dir));
}

void
WorkloadKeyManager::destroy()
{
    std::fill(master_.begin(), master_.end(), 0);
    for (KeyEpoch *e : {&h2d_, &d2h_}) {
        std::fill(e->key.begin(), e->key.end(), 0);
        std::fill(e->ivPrefix.begin(), e->ivPrefix.end(), 0);
        e->ivCounter = 0;
    }
    // Cached contexts hold expanded key schedules; drop them with
    // the rest of the key material.
    for (CipherShard &shard : cipherShards_) {
        std::lock_guard<std::mutex> guard(shard.fill);
        for (CipherSlot &slot : shard.slots) {
            slot.tag.store(0, std::memory_order_relaxed);
            slot.cipher.reset();
        }
    }
    destroyed_ = true;
}

} // namespace ccai::trust
