#include "sealing.hh"

#include "common/bytes_util.hh"

namespace ccai::trust
{

ChassisSealing::ChassisSealing(sim::System &sys, std::string name,
                               HrotBlade &blade, Tick pollPeriod)
    : sim::SimObject(sys, std::move(name)), blade_(blade),
      pollPeriod_(pollPeriod)
{
}

size_t
ChassisSealing::addSensor(const Sensor &sensor)
{
    sensors_.push_back(sensor);
    return sensors_.size() - 1;
}

Bytes
ChassisSealing::statusDigest() const
{
    crypto::Sha256 h;
    for (const Sensor &s : sensors_) {
        std::uint8_t ok = s.withinLimits() ? 1 : 0;
        h.update(reinterpret_cast<const std::uint8_t *>(s.name.data()),
                 s.name.size());
        h.update(&ok, 1);
    }
    return h.finalize();
}

void
ChassisSealing::pollOnce()
{
    bool all_ok = true;
    for (const Sensor &s : sensors_) {
        if (!s.withinLimits())
            all_ok = false;
    }
    if (!all_ok)
        tampered_ = true;

    // Only extend the PCR when the status changes; a quiet chassis
    // keeps a stable sealing measurement the verifier can predict.
    Bytes digest = statusDigest();
    if (digest != lastDigest_) {
        blade_.pcrs().extend(pcridx::kSealingStatus, digest,
                             all_ok ? "sealing-status-ok"
                                    : "sealing-status-tampered");
        lastDigest_ = digest;
    }
}

void
ChassisSealing::start()
{
    if (started_)
        return;
    started_ = true;
    pollOnce();

    // Periodic re-poll via a self-rearming owned timer.
    pollTimer_.setCallback(
        [this] {
            pollOnce();
            eventq().rescheduleIn(&pollTimer_, pollPeriod_);
        },
        "sealing-poll");
    eventq().rescheduleIn(&pollTimer_, pollPeriod_);
}

void
ChassisSealing::injectReading(size_t sensorIndex, double value)
{
    sensors_.at(sensorIndex).value = value;
}

} // namespace ccai::trust
