/**
 * @file
 * Secure boot of the PCIe-SC (paper §6): the HRoT-Blade decrypts the
 * bitstream and firmware images from external flash, measures each
 * component along a predefined chain of trust into PCRs, checks the
 * measurements against golden values, and only then releases the
 * boot loader.
 */

#ifndef CCAI_TRUST_SECURE_BOOT_HH
#define CCAI_TRUST_SECURE_BOOT_HH

#include <map>
#include <string>
#include <vector>

#include "crypto/gcm.hh"
#include "trust/hrot.hh"

namespace ccai::trust
{

/** An encrypted component image stored in external flash. */
struct FlashImage
{
    std::string name;
    size_t pcrIndex;
    Bytes iv;
    Bytes ciphertext;
    Bytes tag;
};

/** External flash holding the PCIe-SC's boot images. */
class ExternalFlash
{
  public:
    /** Encrypt and store an image under the flash key. */
    void store(const std::string &name, size_t pcr_index,
               const Bytes &plaintext, const crypto::AesGcm &flash_key,
               crypto::Drbg &drbg);

    const std::vector<FlashImage> &images() const { return images_; }

    /** Attack hook: corrupt the ciphertext of a stored image. */
    void tamper(const std::string &name);

  private:
    std::vector<FlashImage> images_;
};

/** Result of a secure boot attempt. */
struct BootResult
{
    bool success = false;
    std::string failure; ///< which component failed, when !success
    std::vector<std::string> loadedComponents;
};

/**
 * Secure-boot engine: verifies and loads the flash contents,
 * extending the HRoT-Blade's PCRs along the way.
 */
class SecureBoot
{
  public:
    SecureBoot(HrotBlade &hrot, const crypto::AesGcm &flash_key);

    /** Record the expected digest of a component (golden value). */
    void
    addGoldenDigest(const std::string &name, const Bytes &digest)
    {
        golden_[name] = digest;
    }

    /**
     * Run the boot chain: decrypt each image in flash order, verify
     * its digest against the golden value, extend the PCR. Aborts at
     * the first failure (nothing later loads).
     */
    BootResult boot(const ExternalFlash &flash);

  private:
    HrotBlade &hrot_;
    const crypto::AesGcm &flashKey_;
    std::map<std::string, Bytes> golden_;
};

} // namespace ccai::trust

#endif // CCAI_TRUST_SECURE_BOOT_HH
