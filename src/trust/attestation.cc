#include "attestation.hh"

#include "common/bytes_util.hh"
#include "common/logging.hh"

namespace ccai::trust
{

AttestationResponder::AttestationResponder(HrotBlade &cpuHrot,
                                           HrotBlade &blade,
                                           sim::Rng &rng)
    : cpuHrot_(cpuHrot), blade_(blade), rng_(rng),
      dh_(crypto::generateKeyPair(rng))
{
}

Bytes
AttestationResponder::sessionSecret(const crypto::BigInt &peerPub) const
{
    return crypto::computeSharedSecret(dh_.priv, peerPub);
}

const Certificate &
AttestationResponder::cpuAkCert() const
{
    return cpuHrot_.akCertificate();
}

const Certificate &
AttestationResponder::bladeAkCert() const
{
    return blade_.akCertificate();
}

const Certificate &
AttestationResponder::cpuEkCert() const
{
    return cpuHrot_.ekCertificate();
}

const Certificate &
AttestationResponder::bladeEkCert() const
{
    return blade_.ekCertificate();
}

AttestationReport
AttestationResponder::respond(const Challenge &challenge)
{
    AttestationReport report;
    report.cpuQuote =
        cpuHrot_.quote(challenge.nonce, challenge.pcrSelection, rng_);
    report.bladeQuote =
        blade_.quote(challenge.nonce, challenge.pcrSelection, rng_);
    return report;
}

AttestationVerifier::AttestationVerifier(const RootCa &ca, sim::Rng &rng)
    : ca_(ca), rng_(rng), dh_(crypto::generateKeyPair(rng))
{
}

Bytes
AttestationVerifier::sessionSecret(const crypto::BigInt &peerPub) const
{
    return crypto::computeSharedSecret(dh_.priv, peerPub);
}

void
AttestationVerifier::expectPcr(size_t index, const Bytes &value)
{
    expectedPcrs_[index] = value;
}

Challenge
AttestationVerifier::makeChallenge(
    std::uint32_t keyId, const std::vector<size_t> &pcrSelection)
{
    Challenge c;
    c.keyId = keyId;
    c.pcrSelection = pcrSelection;
    c.nonce = rng_.bytes(32);
    return c;
}

VerifyResult
AttestationVerifier::verifyQuoteChain(const Quote &quote,
                                      const Challenge &challenge,
                                      const Certificate &ekCert,
                                      const Certificate &akCert,
                                      const std::string &who)
{
    VerifyResult r;

    // EK certificate chains to the corporate Root CA.
    if (!ca_.verify(ekCert)) {
        r.reason = who + ": EK certificate not signed by Root CA";
        return r;
    }
    // AK certificate is signed by the EK.
    if (!crypto::verify(ekCert.publicKey, akCert.tbs(),
                        akCert.issuerSignature)) {
        r.reason = who + ": AK certificate not signed by EK";
        return r;
    }
    // Quote signatures verify under the AK.
    if (!HrotBlade::verifyQuote(quote, akCert.publicKey)) {
        r.reason = who + ": quote signature invalid";
        return r;
    }
    // Nonce freshness (replay defense).
    if (quote.nonce != challenge.nonce) {
        r.reason = who + ": nonce mismatch (replayed report?)";
        return r;
    }
    if (quote.pcrSelection != challenge.pcrSelection) {
        r.reason = who + ": PCR selection mismatch";
        return r;
    }
    // Expected PCR values.
    for (size_t i = 0; i < quote.pcrSelection.size(); ++i) {
        auto it = expectedPcrs_.find(quote.pcrSelection[i]);
        if (it == expectedPcrs_.end())
            continue;
        if (it->second != quote.pcrValues[i]) {
            r.reason = who + ": PCR " +
                       std::to_string(quote.pcrSelection[i]) +
                       " does not match golden value";
            return r;
        }
    }

    r.ok = true;
    return r;
}

VerifyResult
AttestationVerifier::verifyReport(const AttestationReport &report,
                                  const Challenge &challenge,
                                  const AttestationResponder &responder)
{
    VerifyResult r = verifyQuoteChain(report.cpuQuote, challenge,
                                      responder.cpuEkCert(),
                                      responder.cpuAkCert(), "cpu-hrot");
    if (!r.ok)
        return r;
    return verifyQuoteChain(report.bladeQuote, challenge,
                            responder.bladeEkCert(),
                            responder.bladeAkCert(), "hrot-blade");
}

} // namespace ccai::trust
