#include "json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ccai::obs
{

std::string
JsonEmitter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
JsonEmitter::formatDouble(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

void
JsonEmitter::newline(std::size_t depth)
{
    os_ << '\n';
    for (std::size_t i = 0; i < depth * indentWidth_; ++i)
        os_ << ' ';
}

void
JsonEmitter::prepare()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return; // key() already positioned us
    }
    if (stack_.empty())
        return; // top-level value
    Scope &scope = stack_.back();
    if (scope.count)
        os_ << ',';
    newline(stack_.size());
    ++scope.count;
}

JsonEmitter &
JsonEmitter::beginObject()
{
    prepare();
    os_ << '{';
    stack_.push_back({false, 0});
    return *this;
}

JsonEmitter &
JsonEmitter::endObject()
{
    std::size_t had = stack_.empty() ? 0 : stack_.back().count;
    if (!stack_.empty())
        stack_.pop_back();
    if (had)
        newline(stack_.size());
    os_ << '}';
    if (stack_.empty())
        os_ << '\n';
    return *this;
}

JsonEmitter &
JsonEmitter::beginArray()
{
    prepare();
    os_ << '[';
    stack_.push_back({true, 0});
    return *this;
}

JsonEmitter &
JsonEmitter::endArray()
{
    std::size_t had = stack_.empty() ? 0 : stack_.back().count;
    if (!stack_.empty())
        stack_.pop_back();
    if (had)
        newline(stack_.size());
    os_ << ']';
    return *this;
}

JsonEmitter &
JsonEmitter::key(std::string_view k)
{
    if (!stack_.empty()) {
        Scope &scope = stack_.back();
        if (scope.count)
            os_ << ',';
        newline(stack_.size());
        ++scope.count;
    }
    os_ << '"' << escape(k) << "\": ";
    pendingKey_ = true;
    return *this;
}

JsonEmitter &
JsonEmitter::value(std::string_view v)
{
    prepare();
    os_ << '"' << escape(v) << '"';
    return *this;
}

JsonEmitter &
JsonEmitter::value(bool v)
{
    prepare();
    os_ << (v ? "true" : "false");
    return *this;
}

JsonEmitter &
JsonEmitter::value(double v)
{
    prepare();
    os_ << formatDouble(v);
    return *this;
}

JsonEmitter &
JsonEmitter::valueNull()
{
    prepare();
    os_ << "null";
    return *this;
}

JsonEmitter &
JsonEmitter::valueInt(std::int64_t v)
{
    prepare();
    os_ << v;
    return *this;
}

JsonEmitter &
JsonEmitter::valueUint(std::uint64_t v)
{
    prepare();
    os_ << v;
    return *this;
}

} // namespace ccai::obs
