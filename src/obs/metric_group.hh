/**
 * @file
 * Named metric groups and the process registry that aggregates them.
 *
 * A MetricGroup owns the stats of one component under a dotted
 * prefix ("adaptor", "pcie_sc", "tenant1.adaptor"). Storage is
 * std::map so node addresses are stable: the typed handles returned
 * by counterHandle()/histogramHandle()/... stay valid for the life
 * of the group, letting components resolve every stat once at
 * construction and never touch a string key on a hot path again.
 * (Handles are the only mutable accessors; the const map views below
 * exist for whole-group enumeration — JSON export, tenant rollups.)
 *
 * A MetricsRegistry is a non-owning directory of live groups (one
 * per sim::System); it powers whole-machine JSON snapshots and
 * cross-component counter sums without enumerating components by
 * hand.
 */

#ifndef CCAI_OBS_METRIC_GROUP_HH
#define CCAI_OBS_METRIC_GROUP_HH

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/stats.hh"

namespace ccai::obs
{

class MetricsRegistry;

/**
 * Named statistics group. Components own one and register their
 * counters under dotted names for uniform reporting.
 */
class MetricGroup
{
  public:
    explicit MetricGroup(std::string prefix)
        : prefix_(std::move(prefix))
    {}

    /** Construct and register with @p registry; the destructor
     * deregisters, so re-registration under the same prefix (e.g. a
     * rebuilt Platform) never leaves dangling entries. */
    MetricGroup(MetricsRegistry &registry, std::string prefix);

    ~MetricGroup();

    MetricGroup(const MetricGroup &) = delete;
    MetricGroup &operator=(const MetricGroup &) = delete;

    // Typed cached handles — resolve once, use forever. Two handles
    // for the same name alias the same underlying stat; the stat is
    // created on first lookup.
    CounterHandle
    counterHandle(const std::string &name)
    {
        return CounterHandle(&counters_[name]);
    }

    GaugeHandle
    gaugeHandle(const std::string &name)
    {
        return GaugeHandle(&gauges_[name]);
    }

    DistributionHandle
    distributionHandle(const std::string &name)
    {
        return DistributionHandle(&dists_[name]);
    }

    HistogramHandle
    histogramHandle(const std::string &name)
    {
        return HistogramHandle(&hists_[name]);
    }

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }

    const std::map<std::string, Distribution> &distributions() const
    {
        return dists_;
    }

    const std::map<std::string, Gauge> &gauges() const
    {
        return gauges_;
    }

    const std::map<std::string, Histogram> &histograms() const
    {
        return hists_;
    }

    const std::string &prefix() const { return prefix_; }

    void reset();

    /** Render all stats as "prefix.name value" lines. */
    std::string dump() const;

    /** One JSON object: {counters: {...}, distributions: {...},
     * gauges: {...}, histograms: {...}} (empty sections omitted). */
    void writeJson(JsonEmitter &json, bool withBuckets = true) const;

  private:
    MetricsRegistry *registry_ = nullptr;
    std::string prefix_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Distribution> dists_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> hists_;
};

/**
 * Non-owning directory of live MetricGroups. Groups add themselves
 * on construction (when built with the registry overload) and remove
 * themselves on destruction.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    void add(MetricGroup *group);
    void remove(MetricGroup *group);

    /** Registration order (deterministic: construction order). */
    const std::vector<MetricGroup *> &groups() const
    {
        return groups_;
    }

    /** First group with exactly @p prefix; nullptr when absent. */
    MetricGroup *find(std::string_view prefix) const;

    /** Sum a named counter across every registered group. */
    std::uint64_t sumCounter(const std::string &name) const;

    void resetAll();

    /**
     * Snapshot of every group keyed by prefix (sorted), suitable for
     * Platform::exportMetricsJson(). Deterministic: same sim state
     * in, byte-identical JSON out.
     */
    void writeJson(JsonEmitter &json, bool withBuckets = true) const;

  private:
    std::vector<MetricGroup *> groups_;
};

} // namespace ccai::obs

#endif // CCAI_OBS_METRIC_GROUP_HH
