/**
 * @file
 * Typed statistic values of the observability plane: monotonic
 * counters, point-in-time gauges, running distributions, and
 * log-bucketed latency histograms with percentile queries. All of
 * them are plain value types — cross-thread aggregation is done by
 * keeping one instance per thread and merge()-ing, never by sharing.
 *
 * The matching *Handle types are the hot-path API: a handle is a
 * cached pointer to a stat owned by a MetricGroup, resolved once at
 * component construction, so per-TLP/per-chunk code paths never pay
 * a string-keyed map lookup.
 */

#ifndef CCAI_OBS_STATS_HH
#define CCAI_OBS_STATS_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>

namespace ccai::obs
{

class JsonEmitter;

/** Monotonic scalar counter. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t by = 1) { value_ += by; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Last-written scalar (queue depths, window sizes, rates). */
class Gauge
{
  public:
    Gauge() = default;

    void set(double v) { value_ = v; }
    void add(double by) { value_ += by; }
    double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** Running mean/min/max/stddev of a stream of samples. */
class Distribution
{
  public:
    void
    sample(double v)
    {
        ++n_;
        sum_ += v;
        sumSq_ += v * v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    std::uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const { return n_ ? sum_ / n_ : 0.0; }
    /** 0 when empty — the internal sentinel never escapes. */
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    double
    stddev() const
    {
        if (n_ < 2)
            return 0.0;
        double m = mean();
        double var = (sumSq_ - n_ * m * m) / (n_ - 1);
        return var > 0 ? std::sqrt(var) : 0.0;
    }

    /** Fold another distribution in (cross-thread aggregation). */
    void
    merge(const Distribution &other)
    {
        if (!other.n_)
            return;
        n_ += other.n_;
        sum_ += other.sum_;
        sumSq_ += other.sumSq_;
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }

    void
    reset()
    {
        n_ = 0;
        sum_ = sumSq_ = 0.0;
        min_ = 1e300;
        max_ = -1e300;
    }

    /** {count, mean, min, max, stddev}; empty -> all-zero fields. */
    void writeJson(JsonEmitter &json) const;

  private:
    std::uint64_t n_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = 1e300;
    double max_ = -1e300;
};

/**
 * Log-bucketed histogram over unsigned 64-bit samples (latencies in
 * ticks, sizes in bytes). Each power-of-two octave is split into 16
 * linear sub-buckets, bounding the relative quantization error of a
 * percentile query to about 6%; values below 16 get exact unit
 * buckets. Storage is a fixed ~8 KiB table, so sampling is two
 * shifts and an increment — cheap enough for per-TLP paths.
 */
class Histogram
{
  public:
    static constexpr unsigned kSubBucketBits = 4;
    static constexpr std::uint64_t kSubBuckets = 1ull << kSubBucketBits;
    /** 16 exact unit buckets + 60 octaves x 16 sub-buckets. */
    static constexpr std::size_t kBuckets =
        kSubBuckets * (65 - kSubBucketBits);

    void
    sample(std::uint64_t v)
    {
        ++counts_[bucketIndex(v)];
        ++n_;
        sum_ += static_cast<double>(v);
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    std::uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const { return n_ ? sum_ / n_ : 0.0; }
    std::uint64_t min() const { return n_ ? min_ : 0; }
    std::uint64_t max() const { return n_ ? max_ : 0; }

    /**
     * Value at percentile @p p (0..100), interpolated within the
     * containing bucket and clamped to the observed [min, max].
     * Matches a sorted-sample oracle's fractional-rank lookup to
     * within one sub-bucket width.
     */
    double percentile(double p) const;

    double p50() const { return percentile(50.0); }
    double p90() const { return percentile(90.0); }
    double p99() const { return percentile(99.0); }
    double p999() const { return percentile(99.9); }

    /** Fold another histogram in (cross-thread aggregation). */
    void merge(const Histogram &other);

    void reset();

    /** Index of the bucket holding @p v. */
    static std::size_t bucketIndex(std::uint64_t v);
    /** Inclusive lower bound of bucket @p index. */
    static std::uint64_t bucketLow(std::size_t index);
    /** Exclusive upper bound of bucket @p index. */
    static std::uint64_t bucketHigh(std::size_t index);

    std::uint64_t bucketCount(std::size_t index) const
    {
        return counts_[index];
    }

    /** {count, mean, min, max, p50..p999, buckets: [[low, n]...]}. */
    void writeJson(JsonEmitter &json, bool withBuckets = true) const;

  private:
    std::uint64_t n_ = 0;
    double sum_ = 0.0;
    std::uint64_t min_ = UINT64_MAX;
    std::uint64_t max_ = 0;
    std::array<std::uint64_t, kBuckets> counts_{};
};

inline std::size_t
Histogram::bucketIndex(std::uint64_t v)
{
    if (v < kSubBuckets)
        return static_cast<std::size_t>(v);
    unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
    unsigned octave = msb - kSubBucketBits; // 0-based, v >= 16
    std::uint64_t sub = (v >> octave) - kSubBuckets;
    return kSubBuckets + octave * kSubBuckets +
           static_cast<std::size_t>(sub);
}

inline std::uint64_t
Histogram::bucketLow(std::size_t index)
{
    if (index < kSubBuckets)
        return index;
    std::size_t octave = (index - kSubBuckets) / kSubBuckets;
    std::uint64_t sub = (index - kSubBuckets) % kSubBuckets;
    return (kSubBuckets + sub) << octave;
}

inline std::uint64_t
Histogram::bucketHigh(std::size_t index)
{
    if (index < kSubBuckets)
        return index + 1;
    std::size_t octave = (index - kSubBuckets) / kSubBuckets;
    std::uint64_t sub = (index - kSubBuckets) % kSubBuckets;
    std::uint64_t base = kSubBuckets + sub + 1;
    // The top bucket's exclusive bound (2^64) is unrepresentable;
    // saturate instead of wrapping to 0, which would invert the
    // bucket interval and break percentile interpolation there.
    if (octave >= 64 || (base << octave) >> octave != base)
        return UINT64_MAX;
    return base << octave;
}

/**
 * Cached reference to a Counter owned by a MetricGroup. Default
 * construction yields an unbound handle whose operations are no-ops,
 * so components can keep handles for stats that only exist in some
 * configurations.
 */
class CounterHandle
{
  public:
    CounterHandle() = default;
    explicit CounterHandle(Counter *c) : c_(c) {}

    void
    inc(std::uint64_t by = 1)
    {
        if (c_)
            c_->inc(by);
    }

    std::uint64_t value() const { return c_ ? c_->value() : 0; }
    explicit operator bool() const { return c_ != nullptr; }

  private:
    Counter *c_ = nullptr;
};

/** Cached reference to a Gauge owned by a MetricGroup. */
class GaugeHandle
{
  public:
    GaugeHandle() = default;
    explicit GaugeHandle(Gauge *g) : g_(g) {}

    void
    set(double v)
    {
        if (g_)
            g_->set(v);
    }

    void
    add(double by)
    {
        if (g_)
            g_->add(by);
    }

    double value() const { return g_ ? g_->value() : 0.0; }
    explicit operator bool() const { return g_ != nullptr; }

  private:
    Gauge *g_ = nullptr;
};

/** Cached reference to a Distribution owned by a MetricGroup. */
class DistributionHandle
{
  public:
    DistributionHandle() = default;
    explicit DistributionHandle(Distribution *d) : d_(d) {}

    void
    sample(double v)
    {
        if (d_)
            d_->sample(v);
    }

    const Distribution *get() const { return d_; }
    explicit operator bool() const { return d_ != nullptr; }

  private:
    Distribution *d_ = nullptr;
};

/** Cached reference to a Histogram owned by a MetricGroup. */
class HistogramHandle
{
  public:
    HistogramHandle() = default;
    explicit HistogramHandle(Histogram *h) : h_(h) {}

    void
    sample(std::uint64_t v)
    {
        if (h_)
            h_->sample(v);
    }

    const Histogram *get() const { return h_; }
    explicit operator bool() const { return h_ != nullptr; }

  private:
    Histogram *h_ = nullptr;
};

} // namespace ccai::obs

#endif // CCAI_OBS_STATS_HH
