#include "trace.hh"

#include "obs/json.hh"

namespace ccai::obs
{

TrackId
Tracer::track(const std::string &name)
{
    for (std::size_t i = 0; i < tracks_.size(); ++i)
        if (tracks_[i] == name)
            return static_cast<TrackId>(i);
    tracks_.push_back(name);
    return static_cast<TrackId>(tracks_.size() - 1);
}

void
Tracer::record(TraceEvent ev)
{
    if (events_.size() >= capacity_) {
        ++dropped_;
        return;
    }
    events_.push_back(std::move(ev));
}

void
Tracer::clear()
{
    events_.clear();
    dropped_ = 0;
}

void
Tracer::writeChromeTrace(std::ostream &os) const
{
    JsonEmitter json(os);
    json.beginObject();
    json.field("displayTimeUnit", "ms");
    json.key("traceEvents");
    json.beginArray();

    json.beginObject();
    json.field("name", "process_name");
    json.field("ph", "M");
    json.field("pid", 1);
    json.field("tid", 0);
    json.key("args");
    json.beginObject();
    json.field("name", "ccai-sim");
    json.endObject();
    json.endObject();

    for (std::size_t i = 0; i < tracks_.size(); ++i) {
        json.beginObject();
        json.field("name", "thread_name");
        json.field("ph", "M");
        json.field("pid", 1);
        json.field("tid", i);
        json.key("args");
        json.beginObject();
        json.field("name", tracks_[i]);
        json.endObject();
        json.endObject();

        json.beginObject();
        json.field("name", "thread_sort_index");
        json.field("ph", "M");
        json.field("pid", 1);
        json.field("tid", i);
        json.key("args");
        json.beginObject();
        json.field("sort_index", i);
        json.endObject();
        json.endObject();
    }

    // Ticks are picoseconds; trace_event timestamps are microseconds.
    constexpr double kTicksPerUsD = static_cast<double>(kTicksPerUs);
    for (const TraceEvent &ev : events_) {
        json.beginObject();
        json.field("name", ev.name);
        json.field("ph", std::string_view(&ev.phase, 1));
        json.field("pid", 1);
        json.field("tid", ev.track);
        json.field("ts", static_cast<double>(ev.ts) / kTicksPerUsD);
        if (ev.phase == 'X')
            json.field("dur",
                       static_cast<double>(ev.dur) / kTicksPerUsD);
        if (ev.phase == 'i')
            json.field("s", "t"); // thread-scoped instant
        if (!ev.detail.empty()) {
            json.key("args");
            json.beginObject();
            json.field("detail", ev.detail);
            json.endObject();
        }
        json.endObject();
    }

    json.endArray();
    json.endObject();
}

} // namespace ccai::obs
