#include "metric_group.hh"

#include <algorithm>
#include <sstream>

#include "obs/json.hh"

namespace ccai::obs
{

MetricGroup::MetricGroup(MetricsRegistry &registry, std::string prefix)
    : registry_(&registry), prefix_(std::move(prefix))
{
    registry_->add(this);
}

MetricGroup::~MetricGroup()
{
    if (registry_)
        registry_->remove(this);
}

void
MetricGroup::reset()
{
    for (auto &kv : counters_)
        kv.second.reset();
    for (auto &kv : dists_)
        kv.second.reset();
    for (auto &kv : gauges_)
        kv.second.reset();
    for (auto &kv : hists_)
        kv.second.reset();
}

std::string
MetricGroup::dump() const
{
    std::ostringstream os;
    for (const auto &kv : counters_)
        os << prefix_ << '.' << kv.first << ' ' << kv.second.value()
           << '\n';
    for (const auto &kv : dists_) {
        const Distribution &d = kv.second;
        os << prefix_ << '.' << kv.first << ".count " << d.count() << '\n';
        os << prefix_ << '.' << kv.first << ".mean " << d.mean() << '\n';
        os << prefix_ << '.' << kv.first << ".min " << d.min() << '\n';
        os << prefix_ << '.' << kv.first << ".max " << d.max() << '\n';
    }
    for (const auto &kv : gauges_)
        os << prefix_ << '.' << kv.first << ' ' << kv.second.value()
           << '\n';
    for (const auto &kv : hists_) {
        const Histogram &h = kv.second;
        os << prefix_ << '.' << kv.first << ".count " << h.count() << '\n';
        os << prefix_ << '.' << kv.first << ".mean " << h.mean() << '\n';
        os << prefix_ << '.' << kv.first << ".p50 " << h.p50() << '\n';
        os << prefix_ << '.' << kv.first << ".p99 " << h.p99() << '\n';
        os << prefix_ << '.' << kv.first << ".max " << h.max() << '\n';
    }
    return os.str();
}

void
MetricGroup::writeJson(JsonEmitter &json, bool withBuckets) const
{
    json.beginObject();
    if (!counters_.empty()) {
        json.key("counters");
        json.beginObject();
        for (const auto &kv : counters_)
            json.field(kv.first, kv.second.value());
        json.endObject();
    }
    if (!dists_.empty()) {
        json.key("distributions");
        json.beginObject();
        for (const auto &kv : dists_) {
            json.key(kv.first);
            kv.second.writeJson(json);
        }
        json.endObject();
    }
    if (!gauges_.empty()) {
        json.key("gauges");
        json.beginObject();
        for (const auto &kv : gauges_)
            json.field(kv.first, kv.second.value());
        json.endObject();
    }
    if (!hists_.empty()) {
        json.key("histograms");
        json.beginObject();
        for (const auto &kv : hists_) {
            json.key(kv.first);
            kv.second.writeJson(json, withBuckets);
        }
        json.endObject();
    }
    json.endObject();
}

void
MetricsRegistry::add(MetricGroup *group)
{
    if (std::find(groups_.begin(), groups_.end(), group) ==
        groups_.end())
        groups_.push_back(group);
}

void
MetricsRegistry::remove(MetricGroup *group)
{
    groups_.erase(std::remove(groups_.begin(), groups_.end(), group),
                  groups_.end());
}

MetricGroup *
MetricsRegistry::find(std::string_view prefix) const
{
    for (MetricGroup *g : groups_)
        if (g->prefix() == prefix)
            return g;
    return nullptr;
}

std::uint64_t
MetricsRegistry::sumCounter(const std::string &name) const
{
    std::uint64_t total = 0;
    for (MetricGroup *g : groups_) {
        auto it = g->counters().find(name);
        if (it != g->counters().end())
            total += it->second.value();
    }
    return total;
}

void
MetricsRegistry::resetAll()
{
    for (MetricGroup *g : groups_)
        g->reset();
}

void
MetricsRegistry::writeJson(JsonEmitter &json, bool withBuckets) const
{
    std::vector<MetricGroup *> sorted(groups_);
    std::sort(sorted.begin(), sorted.end(),
              [](const MetricGroup *a, const MetricGroup *b) {
                  return a->prefix() < b->prefix();
              });
    json.beginObject();
    for (const MetricGroup *g : sorted) {
        json.key(g->prefix());
        g->writeJson(json, withBuckets);
    }
    json.endObject();
}

} // namespace ccai::obs
