/**
 * @file
 * Minimal streaming JSON emitter shared by the metrics snapshot, the
 * Chrome trace exporter and every BENCH_*.json writer. One emitter
 * means one escaping policy and one number format: strings are
 * escaped per RFC 8259, doubles are printed with the shortest
 * round-trippable precision, and non-finite values degrade to null
 * instead of producing invalid JSON — the drift the per-bench
 * hand-rolled fprintf writers used to have.
 */

#ifndef CCAI_OBS_JSON_HH
#define CCAI_OBS_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace ccai::obs
{

/**
 * Streaming JSON writer with pretty-printing. Structural calls
 * (begin/end object/array, key, value) must follow JSON grammar;
 * violations trip an assert in debug builds and emit best-effort
 * output otherwise.
 */
class JsonEmitter
{
  public:
    explicit JsonEmitter(std::ostream &os, int indentWidth = 2)
        : os_(os), indentWidth_(indentWidth)
    {}

    JsonEmitter &beginObject();
    JsonEmitter &endObject();
    JsonEmitter &beginArray();
    JsonEmitter &endArray();

    /** Emit an object key; the next call must produce its value. */
    JsonEmitter &key(std::string_view k);

    JsonEmitter &value(std::string_view v);
    JsonEmitter &value(const char *v) { return value(std::string_view(v)); }
    JsonEmitter &value(const std::string &v)
    {
        return value(std::string_view(v));
    }
    JsonEmitter &value(bool v);
    JsonEmitter &value(double v);
    JsonEmitter &valueNull();

    template <typename T,
              std::enable_if_t<std::is_integral_v<T> &&
                                   !std::is_same_v<T, bool>,
                               int> = 0>
    JsonEmitter &
    value(T v)
    {
        if constexpr (std::is_signed_v<T>)
            return valueInt(static_cast<std::int64_t>(v));
        else
            return valueUint(static_cast<std::uint64_t>(v));
    }

    /** key(k) followed by value(v). */
    template <typename T>
    JsonEmitter &
    field(std::string_view k, T &&v)
    {
        key(k);
        return value(std::forward<T>(v));
    }

    /** Escape @p s per RFC 8259 (without surrounding quotes). */
    static std::string escape(std::string_view s);

    /**
     * Shortest decimal form of @p v that parses back bit-exactly;
     * "null" for NaN/inf (JSON has no encoding for them).
     */
    static std::string formatDouble(double v);

  private:
    struct Scope
    {
        bool isArray = false;
        std::size_t count = 0;
    };

    JsonEmitter &valueInt(std::int64_t v);
    JsonEmitter &valueUint(std::uint64_t v);

    /** Comma/newline/indent housekeeping before a value or key. */
    void prepare();
    void newline(std::size_t depth);
    void raw(std::string_view s) { os_ << s; }

    std::ostream &os_;
    int indentWidth_;
    std::vector<Scope> stack_;
    bool pendingKey_ = false;
};

} // namespace ccai::obs

#endif // CCAI_OBS_JSON_HH
