/**
 * @file
 * Span tracer for the secure data path: named tracks (one per
 * component, tenant, or logical stream), begin/end spans, complete
 * (known-duration) spans and instant events, all stamped with
 * simulated time. Fully compiled in but disabled by default — every
 * record call is a single predictable branch when off — and exported
 * as Chrome trace_event JSON that loads directly in Perfetto or
 * chrome://tracing.
 */

#ifndef CCAI_OBS_TRACE_HH
#define CCAI_OBS_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace ccai::obs
{

class JsonEmitter;

/** Index into the tracer's track table ("tid" in the export). */
using TrackId = std::uint32_t;
constexpr TrackId kNoTrack = 0xffffffffu;

/** One recorded event. */
struct TraceEvent
{
    std::string name;
    char phase = 'i'; ///< 'B', 'E', 'X', 'i'
    TrackId track = 0;
    Tick ts = 0;
    Tick dur = 0;       ///< 'X' only
    std::string detail; ///< optional args.detail string
};

/**
 * Event recorder. Not thread-safe by design: all recording happens
 * on the simulation thread (events are sim-time stamped; wall-clock
 * worker threads aggregate via histogram merge instead).
 */
class Tracer
{
  public:
    bool enabled() const { return enabled_; }
    void setEnabled(bool on) { enabled_ = on; }

    /** Find-or-create the track named @p name. Always available so
     * components can resolve ids before tracing is switched on. */
    TrackId track(const std::string &name);

    /** Memoizing helper: resolves @p name once into @p slot. */
    TrackId
    trackCached(TrackId &slot, const std::string &name)
    {
        if (slot == kNoTrack)
            slot = track(name);
        return slot;
    }

    const std::vector<std::string> &trackNames() const
    {
        return tracks_;
    }

    void
    begin(TrackId track, std::string name, Tick ts)
    {
        if (!enabled_)
            return;
        record({std::move(name), 'B', track, ts, 0, {}});
    }

    void
    end(TrackId track, std::string name, Tick ts)
    {
        if (!enabled_)
            return;
        record({std::move(name), 'E', track, ts, 0, {}});
    }

    /** Span with a known duration (does not nest on the track). */
    void
    complete(TrackId track, std::string name, Tick ts, Tick dur)
    {
        if (!enabled_)
            return;
        record({std::move(name), 'X', track, ts, dur, {}});
    }

    void
    instant(TrackId track, std::string name, Tick ts,
            std::string detail = {})
    {
        if (!enabled_)
            return;
        record({std::move(name), 'i', track, ts, 0,
                std::move(detail)});
    }

    const std::vector<TraceEvent> &events() const { return events_; }
    std::size_t eventCount() const { return events_.size(); }
    /** Events discarded after the recording cap was hit. */
    std::uint64_t dropped() const { return dropped_; }

    /** Forget recorded events (track table survives). */
    void clear();

    /**
     * Chrome trace_event JSON ("traceEvents" array form): one
     * metadata thread_name record per track, then every event, with
     * timestamps converted from ticks to microseconds.
     */
    void writeChromeTrace(std::ostream &os) const;

  private:
    void record(TraceEvent ev);

    bool enabled_ = false;
    std::vector<std::string> tracks_;
    std::vector<TraceEvent> events_;
    /** Bounds memory for pathological runs (~1M events). */
    std::size_t capacity_ = 1u << 20;
    std::uint64_t dropped_ = 0;
};

} // namespace ccai::obs

#endif // CCAI_OBS_TRACE_HH
