#include "stats.hh"

#include "obs/json.hh"

namespace ccai::obs
{

void
Distribution::writeJson(JsonEmitter &json) const
{
    json.beginObject();
    json.field("count", n_);
    json.field("mean", mean());
    // Accessors guard the empty case: the 1e300 fill values used to
    // track the running min/max must never surface in a snapshot.
    json.field("min", min());
    json.field("max", max());
    json.field("stddev", stddev());
    json.endObject();
}

double
Histogram::percentile(double p) const
{
    if (!n_)
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    // Fractional rank over the sorted sample, matching the oracle
    // convention rank = p/100 * (count - 1).
    double target = p / 100.0 * static_cast<double>(n_ - 1);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        std::uint64_t cnt = counts_[i];
        if (!cnt)
            continue;
        // Bucket i holds ranks [cum, cum + cnt - 1].
        if (target <= static_cast<double>(cum + cnt - 1)) {
            double within =
                (target - static_cast<double>(cum) + 0.5) /
                static_cast<double>(cnt);
            double low = static_cast<double>(bucketLow(i));
            double high = static_cast<double>(bucketHigh(i));
            double v = low + within * (high - low);
            return std::clamp(v, static_cast<double>(min()),
                              static_cast<double>(max()));
        }
        cum += cnt;
    }
    return static_cast<double>(max());
}

void
Histogram::merge(const Histogram &other)
{
    if (!other.n_)
        return;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    for (std::size_t i = 0; i < kBuckets; ++i)
        counts_[i] += other.counts_[i];
}

void
Histogram::reset()
{
    n_ = 0;
    sum_ = 0.0;
    min_ = UINT64_MAX;
    max_ = 0;
    counts_.fill(0);
}

void
Histogram::writeJson(JsonEmitter &json, bool withBuckets) const
{
    json.beginObject();
    json.field("count", n_);
    json.field("mean", mean());
    json.field("min", min());
    json.field("max", max());
    json.field("p50", p50());
    json.field("p90", p90());
    json.field("p99", p99());
    json.field("p999", p999());
    if (withBuckets && n_) {
        json.key("buckets");
        json.beginArray();
        for (std::size_t i = 0; i < kBuckets; ++i) {
            if (!counts_[i])
                continue;
            json.beginArray();
            json.value(bucketLow(i));
            json.value(counts_[i]);
            json.endArray();
        }
        json.endArray();
    }
    json.endObject();
}

} // namespace ccai::obs
