#include "link.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ccai::pcie
{

Link::Link(sim::System &sys, std::string name, const LinkConfig &config)
    : sim::SimObject(sys, std::move(name)), config_(config),
      stats_(this->name())
{
}

void
Link::connect(PcieNode *src, PcieNode *dst)
{
    src_ = src;
    dst_ = dst;
}

Tick
Link::serializationDelay(const Tlp &tlp) const
{
    std::uint32_t units = tlp.unitCount();
    std::uint64_t wire_bytes =
        std::uint64_t(tlp.hasData() ? tlp.payloadBytes() : 0) +
        std::uint64_t(units) * (tlp.headerBytes() + config_.framingBytes);
    double seconds = wire_bytes / config_.bytesPerSecond();
    return secondsToTicks(seconds);
}

void
Link::send(const TlpPtr &tlp)
{
    if (!dst_)
        panic("link %s: send before connect", name().c_str());

    Tick start = std::max(curTick(), busyUntil_);
    Tick ser = serializationDelay(*tlp);
    busyUntil_ = start + ser;
    Tick arrival = busyUntil_ + config_.propagationDelay;

    stats_.counter("tlps").inc();
    stats_.counter("wire_tlps").inc(tlp->unitCount());
    stats_.counter("payload_bytes")
        .inc(tlp->hasData() ? tlp->payloadBytes() : 0);

    PcieNode *from = src_;
    PcieNode *to = dst_;
    eventq().schedule(arrival,
                      [tlp, from, to] { to->receiveTlp(tlp, from); });
}

void
Link::reset()
{
    busyUntil_ = 0;
    stats_.reset();
}

DuplexLink::DuplexLink(sim::System &sys, const std::string &name,
                       PcieNode *a, PcieNode *b,
                       const LinkConfig &config)
    : down_(std::make_unique<Link>(sys, name + ".down", config)),
      up_(std::make_unique<Link>(sys, name + ".up", config))
{
    down_->connect(a, b);
    up_->connect(b, a);
}

} // namespace ccai::pcie
