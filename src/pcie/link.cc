#include "link.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ccai::pcie
{

Link::Link(sim::System &sys, std::string name, const LinkConfig &config)
    : sim::SimObject(sys, std::move(name)), config_(config),
      stats_(this->name())
{
}

void
Link::connect(PcieNode *src, PcieNode *dst)
{
    src_ = src;
    dst_ = dst;
}

Tick
Link::serializationDelay(const Tlp &tlp) const
{
    std::uint32_t units = tlp.unitCount();
    std::uint64_t wire_bytes =
        std::uint64_t(tlp.hasData() ? tlp.payloadBytes() : 0) +
        std::uint64_t(units) * (tlp.headerBytes() + config_.framingBytes);
    double seconds = wire_bytes / config_.bytesPerSecond();
    return secondsToTicks(seconds);
}

void
Link::setFaultConfig(const FaultConfig &config)
{
    injector_ = std::make_unique<FaultInjector>(config, name());
}

void
Link::clearFaults()
{
    injector_.reset();
    held_.reset();
}

void
Link::deliver(const TlpPtr &tlp, Tick when)
{
    PcieNode *from = src_;
    PcieNode *to = dst_;
    eventq().schedule(when,
                      [tlp, from, to] { to->receiveTlp(tlp, from); });
}

void
Link::releaseHeld(Tick when)
{
    if (!held_)
        return;
    TlpPtr held = std::move(held_);
    held_.reset();
    ++holdGen_; // invalidates the pending deadline flush
    deliver(held, when);
}

void
Link::send(const TlpPtr &tlp)
{
    if (!dst_)
        panic("link %s: send before connect", name().c_str());

    Tick start = std::max(curTick(), busyUntil_);
    Tick ser = serializationDelay(*tlp);
    busyUntil_ = start + ser;
    Tick arrival = busyUntil_ + config_.propagationDelay;

    stats_.counter("tlps").inc();
    stats_.counter("wire_tlps").inc(tlp->unitCount());
    stats_.counter("payload_bytes")
        .inc(tlp->hasData() ? tlp->payloadBytes() : 0);

    // Fast path: an unfaulted link is bit-identical to the seed model.
    if (!injector_ || !injector_->enabled()) {
        deliver(tlp, arrival);
        return;
    }

    FaultDecision d = injector_->decide(*tlp, start);
    if (d.any())
        stats_.counter("faults_injected").inc();
    if (d.flapStarted)
        stats_.counter("fault_flap_episodes").inc();

    if (d.drop) {
        // Drops still occupied the wire: random loss and CRC
        // discards happen at the far end, flap loss at the
        // transmitter, but charging serialization uniformly keeps
        // the timing model simple and deterministic.
        if (d.flapDrop)
            stats_.counter("fault_flap_drops").inc();
        else if (d.crcDiscard)
            stats_.counter("crc_discards").inc();
        else
            stats_.counter("fault_drops").inc();
        // A dropped TLP cannot overtake anything; release any held
        // packet so a drop right after a reorder-hold does not
        // extend the hold indefinitely.
        releaseHeld(arrival);
        return;
    }

    TlpPtr out = tlp;
    if (d.corruptSilent) {
        stats_.counter("fault_corrupt_silent").inc();
        out = std::make_shared<Tlp>(*tlp);
        injector_->corruptPayload(*out);
    }
    if (d.extraDelay > 0) {
        stats_.counter("fault_delays").inc();
        arrival += d.extraDelay;
    }

    // Release any previously held TLP just after this one: the new
    // packet overtakes it (the reorder the hold was for).
    releaseHeld(arrival + 1);

    if (d.reorderHold) {
        stats_.counter("fault_reorders").inc();
        held_ = out;
        std::uint64_t gen = ++holdGen_;
        // Deadline flush: if nothing overtakes it, deliver late
        // anyway so the TLP is delayed, not lost.
        Tick deadline = arrival + 20 * kTicksPerUs;
        eventq().schedule(deadline, [this, gen, deadline] {
            if (held_ && holdGen_ == gen) {
                TlpPtr held = std::move(held_);
                held_.reset();
                deliver(held, deadline);
            }
        });
        return;
    }

    deliver(out, arrival);
    if (d.duplicate) {
        stats_.counter("fault_duplicates").inc();
        deliver(std::make_shared<Tlp>(*out), arrival + ser + 1);
    }
}

void
Link::reset()
{
    busyUntil_ = 0;
    held_.reset();
    ++holdGen_;
    if (injector_)
        injector_->reset();
    stats_.reset();
}

DuplexLink::DuplexLink(sim::System &sys, const std::string &name,
                       PcieNode *a, PcieNode *b,
                       const LinkConfig &config)
    : down_(std::make_unique<Link>(sys, name + ".down", config)),
      up_(std::make_unique<Link>(sys, name + ".up", config))
{
    down_->connect(a, b);
    up_->connect(b, a);
}

} // namespace ccai::pcie
