#include "link.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ccai::pcie
{

Link::Handles::Handles(sim::StatGroup &g)
    : tlps(g.counterHandle("tlps")),
      wireTlps(g.counterHandle("wire_tlps")),
      payloadBytes(g.counterHandle("payload_bytes")),
      faultsInjected(g.counterHandle("faults_injected")),
      faultFlapEpisodes(g.counterHandle("fault_flap_episodes")),
      faultFlapDrops(g.counterHandle("fault_flap_drops")),
      crcDiscards(g.counterHandle("crc_discards")),
      faultDrops(g.counterHandle("fault_drops")),
      faultCorruptSilent(g.counterHandle("fault_corrupt_silent")),
      faultDelays(g.counterHandle("fault_delays")),
      faultReorders(g.counterHandle("fault_reorders")),
      faultDuplicates(g.counterHandle("fault_duplicates")),
      wireTicks(g.histogramHandle("wire_ticks")),
      queueTicks(g.histogramHandle("queue_ticks"))
{}

Link::Link(sim::System &sys, std::string name, const LinkConfig &config)
    : sim::SimObject(sys, std::move(name)), config_(config),
      stats_(sys.metrics(), this->name()), s_(stats_),
      tracer_(&sys.tracer())
{
}

void
Link::connect(PcieNode *src, PcieNode *dst)
{
    src_ = src;
    dst_ = dst;
}

Tick
Link::serializationDelay(const Tlp &tlp) const
{
    std::uint32_t units = tlp.unitCount();
    std::uint64_t wire_bytes =
        std::uint64_t(tlp.hasData() ? tlp.payloadBytes() : 0) +
        std::uint64_t(units) * (tlp.headerBytes() + config_.framingBytes);
    double seconds = wire_bytes / config_.bytesPerSecond();
    return secondsToTicks(seconds);
}

void
Link::setFaultConfig(const FaultConfig &config)
{
    injector_ = std::make_unique<FaultInjector>(config, name());
}

void
Link::clearFaults()
{
    injector_.reset();
    held_.reset();
}

void
Link::deliver(const TlpPtr &tlp, Tick when)
{
    PcieNode *from = src_;
    PcieNode *to = dst_;
    eventq().schedule(when,
                      [tlp, from, to] { to->receiveTlp(tlp, from); });
}

void
Link::releaseHeld(Tick when)
{
    if (!held_)
        return;
    TlpPtr held = std::move(held_);
    held_.reset();
    ++holdGen_; // invalidates the pending deadline flush
    deliver(held, when);
}

void
Link::send(const TlpPtr &tlp)
{
    if (!dst_)
        panic("link %s: send before connect", name().c_str());

    Tick start = std::max(curTick(), busyUntil_);
    Tick ser = serializationDelay(*tlp);
    busyUntil_ = start + ser;
    Tick arrival = busyUntil_ + config_.propagationDelay;

    s_.tlps.inc();
    s_.wireTlps.inc(tlp->unitCount());
    s_.payloadBytes.inc(tlp->hasData() ? tlp->payloadBytes() : 0);
    s_.wireTicks.sample(ser);
    s_.queueTicks.sample(start - curTick());
    if (tracer_->enabled())
        tracer_->complete(traceTrack(), "wire", start, ser);

    // Fast path: an unfaulted link is bit-identical to the seed model.
    if (!injector_ || !injector_->enabled()) {
        deliver(tlp, arrival);
        return;
    }

    FaultDecision d = injector_->decide(*tlp, start);
    if (d.any()) {
        s_.faultsInjected.inc();
        if (tracer_->enabled())
            tracer_->instant(traceTrack(), "fault", curTick());
    }
    if (d.flapStarted)
        s_.faultFlapEpisodes.inc();

    if (d.drop) {
        // Drops still occupied the wire: random loss and CRC
        // discards happen at the far end, flap loss at the
        // transmitter, but charging serialization uniformly keeps
        // the timing model simple and deterministic.
        if (d.flapDrop)
            s_.faultFlapDrops.inc();
        else if (d.crcDiscard)
            s_.crcDiscards.inc();
        else
            s_.faultDrops.inc();
        // A dropped TLP cannot overtake anything; release any held
        // packet so a drop right after a reorder-hold does not
        // extend the hold indefinitely.
        releaseHeld(arrival);
        return;
    }

    TlpPtr out = tlp;
    if (d.corruptSilent) {
        s_.faultCorruptSilent.inc();
        out = std::make_shared<Tlp>(*tlp);
        injector_->corruptPayload(*out);
    }
    if (d.extraDelay > 0) {
        s_.faultDelays.inc();
        arrival += d.extraDelay;
    }

    // Release any previously held TLP just after this one: the new
    // packet overtakes it (the reorder the hold was for).
    releaseHeld(arrival + 1);

    if (d.reorderHold) {
        s_.faultReorders.inc();
        held_ = out;
        std::uint64_t gen = ++holdGen_;
        // Deadline flush: if nothing overtakes it, deliver late
        // anyway so the TLP is delayed, not lost.
        Tick deadline = arrival + 20 * kTicksPerUs;
        eventq().schedule(deadline, [this, gen, deadline] {
            if (held_ && holdGen_ == gen) {
                TlpPtr held = std::move(held_);
                held_.reset();
                deliver(held, deadline);
            }
        });
        return;
    }

    deliver(out, arrival);
    if (d.duplicate) {
        s_.faultDuplicates.inc();
        deliver(std::make_shared<Tlp>(*out), arrival + ser + 1);
    }
}

void
Link::reset()
{
    busyUntil_ = 0;
    held_.reset();
    ++holdGen_;
    if (injector_)
        injector_->reset();
    stats_.reset();
}

DuplexLink::DuplexLink(sim::System &sys, const std::string &name,
                       PcieNode *a, PcieNode *b,
                       const LinkConfig &config)
    : down_(std::make_unique<Link>(sys, name + ".down", config)),
      up_(std::make_unique<Link>(sys, name + ".up", config))
{
    down_->connect(a, b);
    up_->connect(b, a);
}

} // namespace ccai::pcie
