/**
 * @file
 * Reliable-transport support types for the secure path.
 *
 * The fabric model can now lose, corrupt, duplicate and reorder TLPs
 * (see FaultInjector), so the protected paths carry an end-to-end
 * ARQ: senders mark TLPs ackRequired, receivers acknowledge in-order
 * sequence numbers per (tenant, channel), and NAKs trigger go-back-N
 * retransmission. This header holds the shared pieces: the retry
 * policy knobs and the TransportAck message codec.
 */

#ifndef CCAI_PCIE_TRANSPORT_HH
#define CCAI_PCIE_TRANSPORT_HH

#include <cstdint>
#include <optional>

#include "common/types.hh"

namespace ccai::pcie
{

/**
 * Retry/timeout policy for the secure-path ARQ loops (Adaptor
 * doorbell writes, RootComplex reads, PCIe-SC sensitive re-reads,
 * D2H chunk re-requests). Timeouts back off exponentially:
 * timeout * backoff^attempt, capped by maxRetries.
 */
struct RetryConfig
{
    /** Master switch; disabled reproduces the lossless-fabric legacy
     * behaviour bit-for-bit (no acks on the wire, no timers). The
     * raw-object default is off so unit fixtures without an ack peer
     * keep working; Platform turns it on for the full topology. */
    bool enabled = false;

    /**
     * Ack timeout for posted writes. Must exceed the worst-case
     * queueing on a loaded link: at Gen4 x16 (~31 GB/s) a 200 us
     * budget covers ~6 MB of queued traffic ahead of the ack.
     */
    Tick ackTimeout = 200 * kTicksPerUs;

    /** Completion timeout for non-posted reads. */
    Tick readTimeout = 500 * kTicksPerUs;

    /** Multiplier applied to the timeout per retry attempt. */
    double backoff = 2.0;

    /** Attempts before a transfer is declared fatal. */
    int maxRetries = 12;

    /** Attempts for root-complex reads before a fabricated
     * CompleterAbort completion unblocks the caller. */
    int maxReadRetries = 8;

    /**
     * Minimum spacing between go-back-N retransmission rounds on one
     * channel. Repeated NAKs for the same gap (every out-of-order
     * packet behind one loss elicits a NAK) collapse into one round.
     */
    Tick retransmitGap = 10 * kTicksPerUs;

    /** Timeout for attempt @p n (0-based), with exponential backoff. */
    Tick
    timeoutFor(Tick base, int attempt) const
    {
        double scaled = double(base);
        for (int i = 0; i < attempt; ++i)
            scaled *= backoff;
        return Tick(scaled);
    }

    /** The full-topology (Platform) default: retries on. */
    static RetryConfig
    enabledDefaults()
    {
        RetryConfig r;
        r.enabled = true;
        return r;
    }
};

/**
 * Payload of a MsgCode::TransportAck message. Acks flow opposite to
 * the data they acknowledge and are themselves unprotected (loss of
 * an ack is healed by the sender's timeout, duplication by the
 * receiver's dup-suppression).
 *
 *  - ACK(seq): every TLP on the channel with seqNo <= seq was
 *    accepted; the sender drops them from its unacked window.
 *  - NAK(seq): the receiver is missing seq; the sender retransmits
 *    the window from seq (go-back-N).
 */
struct TransportAck
{
    bool nak = false;
    std::uint16_t channel = 0; ///< sender-chosen stream id
    std::uint64_t seq = 0;
};

/** Encode an ack payload (checksummed; corrupt acks are dropped). */
Bytes encodeTransportAck(const TransportAck &ack);

/** Decode; nullopt when the payload is malformed or checksum fails. */
std::optional<TransportAck> decodeTransportAck(const Bytes &payload);

} // namespace ccai::pcie

#endif // CCAI_PCIE_TRANSPORT_HH
