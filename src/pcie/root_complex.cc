#include "root_complex.hh"

#include "common/logging.hh"

namespace ccai::pcie
{

RootComplex::Handles::Handles(sim::StatGroup &g)
    : readsSent(g.counterHandle("reads_sent")),
      writesSent(g.counterHandle("writes_sent")),
      completions(g.counterHandle("completions")),
      orphanCompletions(g.counterHandle("orphan_completions")),
      messages(g.counterHandle("messages")),
      unsupported(g.counterHandle("unsupported")),
      readRetries(g.counterHandle("read_retries")),
      readRetryExhausted(g.counterHandle("read_retry_exhausted")),
      faultsRecovered(g.counterHandle("faults_recovered")),
      faultsFatal(g.counterHandle("faults_fatal")),
      iommuBlocked(g.counterHandle("iommu_blocked")),
      dmaWrites(g.counterHandle("dma_writes")),
      dmaReads(g.counterHandle("dma_reads")),
      transportRxAccepted(
          g.counterHandle("transport_rx_accepted")),
      transportRxDuplicates(
          g.counterHandle("transport_rx_duplicates")),
      transportRxOoo(g.counterHandle("transport_rx_ooo")),
      transportAcksSent(g.counterHandle("transport_acks_sent")),
      transportNaksSent(g.counterHandle("transport_naks_sent")),
      transportAcksReceived(
          g.counterHandle("transport_acks_received")),
      readLatencyTicks(g.histogramHandle("read_latency_ticks"))
{}

RootComplex::RootComplex(sim::System &sys, std::string name,
                         HostMemory &mem)
    : sim::SimObject(sys, std::move(name)), mem_(mem),
      stats_(sys.metrics(), this->name()), s_(stats_),
      tracer_(&sys.tracer())
{
}

std::uint8_t
RootComplex::allocTag()
{
    // 256-entry tag space; wrap-around with occupancy check.
    for (int i = 0; i < 256; ++i) {
        std::uint8_t candidate = nextTag_++;
        if (!outstanding_.count(candidate))
            return candidate;
    }
    panic("root complex: tag space exhausted");
}

void
RootComplex::sendRead(Tlp tlp, CplCallback cb)
{
    if (!down_)
        panic("root complex: downstream link not connected");
    tlp.tag = allocTag();
    std::uint8_t tag = tlp.tag;
    auto req = std::make_shared<Tlp>(std::move(tlp));

    OutstandingRead entry;
    entry.cb = std::move(cb);
    entry.request = req;
    entry.issued = curTick();
    outstanding_[tag] = std::move(entry);

    s_.readsSent.inc();
    down_->send(req);
    if (retry_.enabled)
        armReadTimer(tag);
}

void
RootComplex::armReadTimer(std::uint8_t tag)
{
    auto it = outstanding_.find(tag);
    if (it == outstanding_.end())
        return;
    OutstandingRead &o = it->second;
    if (!o.timer)
        o.timer = std::make_unique<sim::EventFunctionWrapper>(
            [this, tag] { onReadTimeout(tag); }, "rc-read-timeout");
    Tick timeout = retry_.timeoutFor(retry_.readTimeout, o.attempts);
    eventq().rescheduleIn(o.timer.get(), timeout);
}

void
RootComplex::onReadTimeout(std::uint8_t tag)
{
    auto it = outstanding_.find(tag);
    if (it == outstanding_.end())
        return;
    OutstandingRead &o = it->second;
    if (o.attempts >= retry_.maxReadRetries) {
        // Budget exhausted: fabricate an abort completion so the
        // caller's state machine can fail instead of hang. Erasing
        // the entry destroys the timer event executing right now, so
        // everything needed afterwards is moved out first.
        CplCallback cb = std::move(o.cb);
        TlpPtr req = o.request;
        outstanding_.erase(it);
        s_.readRetryExhausted.inc();
        s_.faultsFatal.inc();
        warnRateLimited(
            "rc-read-exhausted",
            "root complex: read tag %d addr 0x%llx exhausted "
            "its retry budget",
            int(req->tag),
            (unsigned long long)req->address);
        auto cpl = std::make_shared<Tlp>(Tlp::makeCompletion(
            req->completer, req->requester, req->tag, {},
            CplStatus::CompleterAbort));
        cb(cpl);
        return;
    }
    ++o.attempts;
    s_.readRetries.inc();
    if (tracer_->enabled())
        tracer_->instant(traceTrack(), "read.retry", curTick());
    down_->send(o.request);
    armReadTimer(tag);
}

void
RootComplex::sendWrite(Tlp tlp)
{
    sendWrite(std::make_shared<Tlp>(std::move(tlp)));
}

void
RootComplex::sendWrite(const TlpPtr &tlp)
{
    if (!down_)
        panic("root complex: downstream link not connected");
    s_.writesSent.inc();
    down_->send(tlp);
}

bool
RootComplex::transportGate(const TlpPtr &tlp)
{
    if (!retry_.enabled || !tlp->ackRequired)
        return true;
    std::uint64_t &rx = rxSeq_[tlp->txChannel];
    if (tlp->seqNo == rx + 1) {
        rx = tlp->seqNo;
        s_.transportRxAccepted.inc();
        sendAck(tlp->txChannel, rx, false);
        return true;
    }
    if (tlp->seqNo <= rx) {
        // Retransmit of something already delivered: re-ack so the
        // sender's window advances, but do not apply twice.
        s_.transportRxDuplicates.inc();
        sendAck(tlp->txChannel, rx, false);
        return false;
    }
    // Gap: something before this TLP was lost. NAK the first
    // missing seq; the sender goes back and retransmits from there.
    s_.transportRxOoo.inc();
    sendAck(tlp->txChannel, rx + 1, true);
    return false;
}

void
RootComplex::sendAck(std::uint16_t channel, std::uint64_t seq, bool nak)
{
    Tlp ack = Tlp::makeMessage(wellknown::kRootComplex,
                               MsgCode::TransportAck);
    ack.completer = wellknown::kPcieSc; // ID-routed back to the SC
    ack.fmt = TlpFmt::FourDwData;
    ack.data = encodeTransportAck(TransportAck{nak, channel, seq});
    ack.lengthBytes = static_cast<std::uint32_t>(ack.data.size());
    (nak ? s_.transportNaksSent : s_.transportAcksSent).inc();
    down_->send(std::make_shared<Tlp>(std::move(ack)));
}

void
RootComplex::receiveTlp(const TlpPtr &tlp, PcieNode *)
{
    switch (tlp->type) {
      case TlpType::Completion: {
        if (!transportGate(tlp))
            return;
        auto it = outstanding_.find(tlp->tag);
        if (it == outstanding_.end()) {
            // Benign under retry: the original completion of a read
            // that was already answered by a retransmission.
            s_.orphanCompletions.inc();
            debugLog("root complex: completion with unknown tag %d",
                     int(tlp->tag));
            return;
        }
        if (it->second.attempts > 0)
            s_.faultsRecovered.inc();
        Tick issued = it->second.issued;
        s_.readLatencyTicks.sample(curTick() - issued);
        if (tracer_->enabled())
            tracer_->complete(traceTrack(), "read", issued,
                              curTick() - issued);
        CplCallback cb = std::move(it->second.cb);
        outstanding_.erase(it);
        s_.completions.inc();
        cb(tlp);
        return;
      }
      case TlpType::Message: {
        if (tlp->msgCode == MsgCode::TransportAck) {
            // Dispatched before the MSI handlers: an ack must never
            // pop an interrupt waiter.
            s_.transportAcksReceived.inc();
            auto decoded = decodeTransportAck(tlp->data);
            if (!decoded)
                return;
            auto it = transportHandlers_.find(tlp->completer.raw());
            if (it != transportHandlers_.end())
                it->second(*decoded);
            return;
        }
        if (!transportGate(tlp))
            return;
        s_.messages.inc();
        auto it = msgHandlers_.find(tlp->completer.raw());
        if (it != msgHandlers_.end()) {
            it->second(tlp);
            return;
        }
        if (msgHandler_)
            msgHandler_(tlp);
        return;
      }
      case TlpType::MemRead:
      case TlpType::MemWrite:
        if (!transportGate(tlp))
            return;
        handleInboundRequest(tlp);
        return;
      default:
        s_.unsupported.inc();
        warn("root complex: unsupported inbound %s",
             tlp->toString().c_str());
        return;
    }
}

void
RootComplex::handleInboundRequest(const TlpPtr &tlp)
{
    // Device-initiated DMA against host memory. The IOMMU hook (the
    // privileged software's protection in the paper's threat model)
    // can reject accesses to protected ranges.
    if (iommu_ && !iommu_(tlp->requester, tlp->address,
                          tlp->lengthBytes)) {
        s_.iommuBlocked.inc();
        if (tlp->type == TlpType::MemRead) {
            auto cpl = std::make_shared<Tlp>(Tlp::makeCompletion(
                wellknown::kRootComplex, tlp->requester, tlp->tag, {},
                CplStatus::CompleterAbort));
            down_->send(cpl);
        }
        return;
    }

    if (tlp->type == TlpType::MemWrite) {
        s_.dmaWrites.inc();
        if (!tlp->synthetic)
            mem_.write(tlp->address, tlp->data);
        return;
    }

    s_.dmaReads.inc();
    TlpPtr cpl;
    if (tlp->synthetic) {
        cpl = std::make_shared<Tlp>(Tlp::makeCompletionSynthetic(
            wellknown::kRootComplex, tlp->requester, tlp->tag,
            tlp->lengthBytes));
    } else {
        Bytes data = mem_.read(tlp->address, tlp->lengthBytes);
        cpl = std::make_shared<Tlp>(Tlp::makeCompletion(
            wellknown::kRootComplex, tlp->requester, tlp->tag,
            std::move(data)));
    }
    down_->send(cpl);
}

void
RootComplex::abortTransport()
{
    // Dropping the entries retires their retry timers too: the
    // timer's (tag, gen) lookup finds nothing and no-ops.
    outstanding_.clear();
    rxSeq_.clear();
}

void
RootComplex::reset()
{
    outstanding_.clear();
    nextTag_ = 0;
    rxSeq_.clear();
    stats_.reset();
}

} // namespace ccai::pcie
