#include "root_complex.hh"

#include "common/logging.hh"

namespace ccai::pcie
{

RootComplex::RootComplex(sim::System &sys, std::string name,
                         HostMemory &mem)
    : sim::SimObject(sys, std::move(name)), mem_(mem),
      stats_(this->name())
{
}

std::uint8_t
RootComplex::allocTag()
{
    // 256-entry tag space; wrap-around with occupancy check.
    for (int i = 0; i < 256; ++i) {
        std::uint8_t candidate = nextTag_++;
        if (!outstanding_.count(candidate))
            return candidate;
    }
    panic("root complex: tag space exhausted");
}

void
RootComplex::sendRead(Tlp tlp, CplCallback cb)
{
    if (!down_)
        panic("root complex: downstream link not connected");
    tlp.tag = allocTag();
    std::uint8_t tag = tlp.tag;
    auto req = std::make_shared<Tlp>(std::move(tlp));

    OutstandingRead entry;
    entry.cb = std::move(cb);
    entry.request = req;
    entry.gen = nextReadGen_++;
    std::uint64_t gen = entry.gen;
    outstanding_[tag] = std::move(entry);

    stats_.counter("reads_sent").inc();
    down_->send(req);
    if (retry_.enabled)
        armReadTimer(tag, gen);
}

void
RootComplex::armReadTimer(std::uint8_t tag, std::uint64_t gen)
{
    auto it = outstanding_.find(tag);
    if (it == outstanding_.end())
        return;
    Tick timeout =
        retry_.timeoutFor(retry_.readTimeout, it->second.attempts);
    // The queue has no cancellation: the timer captures (tag, gen)
    // and no-ops when the read completed or the tag was reused.
    eventq().scheduleIn(timeout, [this, tag, gen] {
        auto it = outstanding_.find(tag);
        if (it == outstanding_.end() || it->second.gen != gen)
            return;
        OutstandingRead &o = it->second;
        if (o.attempts >= retry_.maxReadRetries) {
            // Budget exhausted: fabricate an abort completion so
            // the caller's state machine can fail instead of hang.
            CplCallback cb = std::move(o.cb);
            TlpPtr req = o.request;
            outstanding_.erase(it);
            stats_.counter("read_retry_exhausted").inc();
            stats_.counter("faults_fatal").inc();
            warnRateLimited(
                "rc-read-exhausted",
                "root complex: read tag %d addr 0x%llx exhausted "
                "its retry budget",
                int(req->tag),
                (unsigned long long)req->address);
            auto cpl = std::make_shared<Tlp>(Tlp::makeCompletion(
                req->completer, req->requester, req->tag, {},
                CplStatus::CompleterAbort));
            cb(cpl);
            return;
        }
        ++o.attempts;
        stats_.counter("read_retries").inc();
        down_->send(o.request);
        armReadTimer(tag, gen);
    });
}

void
RootComplex::sendWrite(Tlp tlp)
{
    sendWrite(std::make_shared<Tlp>(std::move(tlp)));
}

void
RootComplex::sendWrite(const TlpPtr &tlp)
{
    if (!down_)
        panic("root complex: downstream link not connected");
    stats_.counter("writes_sent").inc();
    down_->send(tlp);
}

bool
RootComplex::transportGate(const TlpPtr &tlp)
{
    if (!retry_.enabled || !tlp->ackRequired)
        return true;
    std::uint64_t &rx = rxSeq_[tlp->txChannel];
    if (tlp->seqNo == rx + 1) {
        rx = tlp->seqNo;
        stats_.counter("transport_rx_accepted").inc();
        sendAck(tlp->txChannel, rx, false);
        return true;
    }
    if (tlp->seqNo <= rx) {
        // Retransmit of something already delivered: re-ack so the
        // sender's window advances, but do not apply twice.
        stats_.counter("transport_rx_duplicates").inc();
        sendAck(tlp->txChannel, rx, false);
        return false;
    }
    // Gap: something before this TLP was lost. NAK the first
    // missing seq; the sender goes back and retransmits from there.
    stats_.counter("transport_rx_ooo").inc();
    sendAck(tlp->txChannel, rx + 1, true);
    return false;
}

void
RootComplex::sendAck(std::uint16_t channel, std::uint64_t seq, bool nak)
{
    Tlp ack = Tlp::makeMessage(wellknown::kRootComplex,
                               MsgCode::TransportAck);
    ack.completer = wellknown::kPcieSc; // ID-routed back to the SC
    ack.fmt = TlpFmt::FourDwData;
    ack.data = encodeTransportAck(TransportAck{nak, channel, seq});
    ack.lengthBytes = static_cast<std::uint32_t>(ack.data.size());
    stats_.counter(nak ? "transport_naks_sent" : "transport_acks_sent")
        .inc();
    down_->send(std::make_shared<Tlp>(std::move(ack)));
}

void
RootComplex::receiveTlp(const TlpPtr &tlp, PcieNode *)
{
    switch (tlp->type) {
      case TlpType::Completion: {
        if (!transportGate(tlp))
            return;
        auto it = outstanding_.find(tlp->tag);
        if (it == outstanding_.end()) {
            // Benign under retry: the original completion of a read
            // that was already answered by a retransmission.
            stats_.counter("orphan_completions").inc();
            debugLog("root complex: completion with unknown tag %d",
                     int(tlp->tag));
            return;
        }
        if (it->second.attempts > 0)
            stats_.counter("faults_recovered").inc();
        CplCallback cb = std::move(it->second.cb);
        outstanding_.erase(it);
        stats_.counter("completions").inc();
        cb(tlp);
        return;
      }
      case TlpType::Message: {
        if (tlp->msgCode == MsgCode::TransportAck) {
            // Dispatched before the MSI handlers: an ack must never
            // pop an interrupt waiter.
            stats_.counter("transport_acks_received").inc();
            auto decoded = decodeTransportAck(tlp->data);
            if (!decoded)
                return;
            auto it = transportHandlers_.find(tlp->completer.raw());
            if (it != transportHandlers_.end())
                it->second(*decoded);
            return;
        }
        if (!transportGate(tlp))
            return;
        stats_.counter("messages").inc();
        auto it = msgHandlers_.find(tlp->completer.raw());
        if (it != msgHandlers_.end()) {
            it->second(tlp);
            return;
        }
        if (msgHandler_)
            msgHandler_(tlp);
        return;
      }
      case TlpType::MemRead:
      case TlpType::MemWrite:
        if (!transportGate(tlp))
            return;
        handleInboundRequest(tlp);
        return;
      default:
        stats_.counter("unsupported").inc();
        warn("root complex: unsupported inbound %s",
             tlp->toString().c_str());
        return;
    }
}

void
RootComplex::handleInboundRequest(const TlpPtr &tlp)
{
    // Device-initiated DMA against host memory. The IOMMU hook (the
    // privileged software's protection in the paper's threat model)
    // can reject accesses to protected ranges.
    if (iommu_ && !iommu_(tlp->requester, tlp->address,
                          tlp->lengthBytes)) {
        stats_.counter("iommu_blocked").inc();
        if (tlp->type == TlpType::MemRead) {
            auto cpl = std::make_shared<Tlp>(Tlp::makeCompletion(
                wellknown::kRootComplex, tlp->requester, tlp->tag, {},
                CplStatus::CompleterAbort));
            down_->send(cpl);
        }
        return;
    }

    if (tlp->type == TlpType::MemWrite) {
        stats_.counter("dma_writes").inc();
        if (!tlp->synthetic)
            mem_.write(tlp->address, tlp->data);
        return;
    }

    stats_.counter("dma_reads").inc();
    TlpPtr cpl;
    if (tlp->synthetic) {
        cpl = std::make_shared<Tlp>(Tlp::makeCompletionSynthetic(
            wellknown::kRootComplex, tlp->requester, tlp->tag,
            tlp->lengthBytes));
    } else {
        Bytes data = mem_.read(tlp->address, tlp->lengthBytes);
        cpl = std::make_shared<Tlp>(Tlp::makeCompletion(
            wellknown::kRootComplex, tlp->requester, tlp->tag,
            std::move(data)));
    }
    down_->send(cpl);
}

void
RootComplex::reset()
{
    outstanding_.clear();
    nextTag_ = 0;
    rxSeq_.clear();
    stats_.reset();
}

} // namespace ccai::pcie
