#include "root_complex.hh"

#include "common/logging.hh"

namespace ccai::pcie
{

RootComplex::RootComplex(sim::System &sys, std::string name,
                         HostMemory &mem)
    : sim::SimObject(sys, std::move(name)), mem_(mem),
      stats_(this->name())
{
}

std::uint8_t
RootComplex::allocTag()
{
    // 256-entry tag space; wrap-around with occupancy check.
    for (int i = 0; i < 256; ++i) {
        std::uint8_t candidate = nextTag_++;
        if (!outstanding_.count(candidate))
            return candidate;
    }
    panic("root complex: tag space exhausted");
}

void
RootComplex::sendRead(Tlp tlp, CplCallback cb)
{
    if (!down_)
        panic("root complex: downstream link not connected");
    tlp.tag = allocTag();
    outstanding_[tlp.tag] = std::move(cb);
    stats_.counter("reads_sent").inc();
    down_->send(std::make_shared<Tlp>(std::move(tlp)));
}

void
RootComplex::sendWrite(Tlp tlp)
{
    if (!down_)
        panic("root complex: downstream link not connected");
    stats_.counter("writes_sent").inc();
    down_->send(std::make_shared<Tlp>(std::move(tlp)));
}

void
RootComplex::receiveTlp(const TlpPtr &tlp, PcieNode *)
{
    switch (tlp->type) {
      case TlpType::Completion: {
        auto it = outstanding_.find(tlp->tag);
        if (it == outstanding_.end()) {
            stats_.counter("orphan_completions").inc();
            warn("root complex: completion with unknown tag %d",
                 int(tlp->tag));
            return;
        }
        CplCallback cb = std::move(it->second);
        outstanding_.erase(it);
        stats_.counter("completions").inc();
        cb(tlp);
        return;
      }
      case TlpType::Message: {
        stats_.counter("messages").inc();
        auto it = msgHandlers_.find(tlp->completer.raw());
        if (it != msgHandlers_.end()) {
            it->second(tlp);
            return;
        }
        if (msgHandler_)
            msgHandler_(tlp);
        return;
      }
      case TlpType::MemRead:
      case TlpType::MemWrite:
        handleInboundRequest(tlp);
        return;
      default:
        stats_.counter("unsupported").inc();
        warn("root complex: unsupported inbound %s",
             tlp->toString().c_str());
        return;
    }
}

void
RootComplex::handleInboundRequest(const TlpPtr &tlp)
{
    // Device-initiated DMA against host memory. The IOMMU hook (the
    // privileged software's protection in the paper's threat model)
    // can reject accesses to protected ranges.
    if (iommu_ && !iommu_(tlp->requester, tlp->address,
                          tlp->lengthBytes)) {
        stats_.counter("iommu_blocked").inc();
        if (tlp->type == TlpType::MemRead) {
            auto cpl = std::make_shared<Tlp>(Tlp::makeCompletion(
                wellknown::kRootComplex, tlp->requester, tlp->tag, {},
                CplStatus::CompleterAbort));
            down_->send(cpl);
        }
        return;
    }

    if (tlp->type == TlpType::MemWrite) {
        stats_.counter("dma_writes").inc();
        if (!tlp->synthetic)
            mem_.write(tlp->address, tlp->data);
        return;
    }

    stats_.counter("dma_reads").inc();
    TlpPtr cpl;
    if (tlp->synthetic) {
        cpl = std::make_shared<Tlp>(Tlp::makeCompletionSynthetic(
            wellknown::kRootComplex, tlp->requester, tlp->tag,
            tlp->lengthBytes));
    } else {
        Bytes data = mem_.read(tlp->address, tlp->lengthBytes);
        cpl = std::make_shared<Tlp>(Tlp::makeCompletion(
            wellknown::kRootComplex, tlp->requester, tlp->tag,
            std::move(data)));
    }
    down_->send(cpl);
}

void
RootComplex::reset()
{
    outstanding_.clear();
    nextTag_ = 0;
    stats_.reset();
}

} // namespace ccai::pcie
