#include "switch.hh"

#include "common/logging.hh"

namespace ccai::pcie
{

Switch::Switch(sim::System &sys, std::string name, Tick forwardLatency)
    : sim::SimObject(sys, std::move(name)),
      forwardLatency_(forwardLatency),
      stats_(sys.metrics(), this->name()), s_(stats_)
{
}

int
Switch::addPort(Link *out)
{
    ports_.push_back(out);
    return static_cast<int>(ports_.size()) - 1;
}

void
Switch::mapAddressRange(const AddrRange &range, int port)
{
    ccai_assert(port >= 0 && port < static_cast<int>(ports_.size()));
    addrMap_.emplace_back(range, port);
}

void
Switch::mapRoutingId(Bdf id, int port)
{
    ccai_assert(port >= 0 && port < static_cast<int>(ports_.size()));
    idMap_[id.raw()] = port;
}

int
Switch::routePort(const Tlp &tlp) const
{
    switch (tlp.type) {
      case TlpType::MemRead:
      case TlpType::MemWrite:
        for (const auto &[range, port] : addrMap_) {
            if (range.contains(tlp.address))
                return port;
        }
        return defaultPort_;
      case TlpType::Completion: {
        // Completions route by requester ID.
        auto it = idMap_.find(tlp.requester.raw());
        return it != idMap_.end() ? it->second : defaultPort_;
      }
      case TlpType::CfgRead:
      case TlpType::CfgWrite: {
        auto it = idMap_.find(tlp.completer.raw());
        return it != idMap_.end() ? it->second : defaultPort_;
      }
      case TlpType::Message: {
        // Interrupts route implicitly towards the root; vendor
        // messages may carry an ID-routed destination.
        if (tlp.completer.raw() != 0) {
            auto it = idMap_.find(tlp.completer.raw());
            if (it != idMap_.end())
                return it->second;
        }
        return defaultPort_;
      }
    }
    return defaultPort_;
}

void
Switch::receiveTlp(const TlpPtr &tlp, PcieNode *)
{
    s_.forwarded.inc();
    int port = routePort(*tlp);
    if (port < 0) {
        s_.dropped.inc();
        warn("switch %s: no route for %s", name().c_str(),
             tlp->toString().c_str());
        return;
    }
    Link *out = ports_[port];
    eventq().scheduleIn(forwardLatency_, [out, tlp] { out->send(tlp); });
}

} // namespace ccai::pcie
