#include "tlp.hh"

#include <cstring>
#include <sstream>

#include "common/buffer_pool.hh"
#include "common/bytes_util.hh"

namespace ccai::pcie
{

namespace
{

/** Payloads at least this large are copied via the buffer pool. */
constexpr std::size_t kPooledPayloadBytes = 4096;

Bytes
copyPayload(const Bytes &src)
{
    if (src.size() < kPooledPayloadBytes)
        return src;
    Bytes out = BufferPool::global().acquire(src.size());
    std::memcpy(out.data(), src.data(), src.size());
    return out;
}

void
retirePayload(Bytes &&buf)
{
    if (buf.capacity() >= BufferPool::kMinPooledBytes)
        BufferPool::global().release(std::move(buf));
}

} // namespace

Tlp::Tlp(const Tlp &other)
    : fmt(other.fmt), type(other.type), requester(other.requester),
      completer(other.completer), tag(other.tag),
      address(other.address), lengthBytes(other.lengthBytes),
      cplStatus(other.cplStatus), msgCode(other.msgCode),
      data(copyPayload(other.data)), synthetic(other.synthetic),
      encrypted(other.encrypted), seqNo(other.seqNo),
      authTagId(other.authTagId), ackRequired(other.ackRequired),
      txChannel(other.txChannel), integrityTag(other.integrityTag)
{
}

Tlp &
Tlp::operator=(const Tlp &other)
{
    if (this != &other) {
        Tlp copy(other);
        *this = std::move(copy);
    }
    return *this;
}

Tlp::~Tlp()
{
    retirePayload(std::move(data));
}

std::string
Bdf::toString() const
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%02x:%02x.%x", bus, device,
                  function);
    return buf;
}

const char *
tlpAnomalyName(TlpAnomaly anomaly)
{
    switch (anomaly) {
      case TlpAnomaly::None:
        return "none";
      case TlpAnomaly::PayloadFmtMismatch:
        return "payload_fmt_mismatch";
      case TlpAnomaly::FmtForType:
        return "fmt_for_type";
      case TlpAnomaly::LengthZero:
        return "length_zero";
      case TlpAnomaly::LengthOverflow:
        return "length_overflow";
      case TlpAnomaly::LengthMismatch:
        return "length_mismatch";
      case TlpAnomaly::AddrWidthMismatch:
        return "addr_width_mismatch";
    }
    return "?";
}

TlpAnomaly
Tlp::headerAnomaly() const
{
    const bool fourDw =
        fmt == TlpFmt::FourDwNoData || fmt == TlpFmt::FourDwData;

    // fmt's data bit must agree with what is actually attached.
    if (!hasData() && !data.empty())
        return TlpAnomaly::PayloadFmtMismatch;
    if (hasData() && payloadBytes() == 0 &&
        type != TlpType::Completion) {
        return TlpAnomaly::PayloadFmtMismatch;
    }

    // Header format legal for the type. Completions and config
    // requests are 3-DW in this model; messages are always 4-DW.
    switch (type) {
      case TlpType::MemRead:
        if (hasData())
            return TlpAnomaly::FmtForType;
        break;
      case TlpType::MemWrite:
        if (!hasData())
            return TlpAnomaly::FmtForType;
        break;
      case TlpType::Completion:
      case TlpType::CfgRead:
      case TlpType::CfgWrite:
        if (fourDw)
            return TlpAnomaly::FmtForType;
        if (type == TlpType::CfgRead && hasData())
            return TlpAnomaly::FmtForType;
        if (type == TlpType::CfgWrite && !hasData())
            return TlpAnomaly::FmtForType;
        break;
      case TlpType::Message:
        if (!fourDw)
            return TlpAnomaly::FmtForType;
        break;
    }

    // Length sanity. Addressed requests must move at least one byte;
    // nothing may claim more than kMaxTlpLengthBytes (the classic
    // "length field wraps 1024 DW" probe scaled to this model); a
    // real payload must match its header length so a filter decision
    // made on the header also covers the bytes behind it.
    const bool addressed = type == TlpType::MemRead ||
                           type == TlpType::MemWrite ||
                           type == TlpType::CfgRead ||
                           type == TlpType::CfgWrite;
    if (addressed && lengthBytes == 0)
        return TlpAnomaly::LengthZero;
    if (lengthBytes > kMaxTlpLengthBytes ||
        data.size() > kMaxTlpLengthBytes) {
        return TlpAnomaly::LengthOverflow;
    }
    if (hasData() && !synthetic && !data.empty() &&
        lengthBytes != data.size()) {
        return TlpAnomaly::LengthMismatch;
    }

    // Address width must match the header size for memory requests
    // (messages and completions carry no address in this model).
    if (type == TlpType::MemRead || type == TlpType::MemWrite) {
        const bool needs64 = address > 0xffffffffull;
        if (needs64 && !fourDw)
            return TlpAnomaly::AddrWidthMismatch;
        if (!needs64 && fourDw)
            return TlpAnomaly::AddrWidthMismatch;
    }

    return TlpAnomaly::None;
}

const char *
tlpTypeName(TlpType type)
{
    switch (type) {
      case TlpType::MemRead:
        return "MRd";
      case TlpType::MemWrite:
        return "MWr";
      case TlpType::Completion:
        return "Cpl";
      case TlpType::CfgRead:
        return "CfgRd";
      case TlpType::CfgWrite:
        return "CfgWr";
      case TlpType::Message:
        return "Msg";
    }
    return "?";
}

Bytes
Tlp::serializeHeader() const
{
    Bytes out(32, 0);
    out[0] = static_cast<std::uint8_t>(fmt);
    out[1] = static_cast<std::uint8_t>(type);
    out[2] = static_cast<std::uint8_t>(requester.raw() >> 8);
    out[3] = static_cast<std::uint8_t>(requester.raw());
    out[4] = static_cast<std::uint8_t>(completer.raw() >> 8);
    out[5] = static_cast<std::uint8_t>(completer.raw());
    out[6] = tag;
    out[7] = static_cast<std::uint8_t>(cplStatus);
    storeBe64(out.data() + 8, address);
    storeBe32(out.data() + 16, lengthBytes);
    storeBe64(out.data() + 20, seqNo);
    out[28] = static_cast<std::uint8_t>(msgCode);
    out[29] = ackRequired ? 1 : 0;
    out[30] = static_cast<std::uint8_t>(txChannel >> 8);
    out[31] = static_cast<std::uint8_t>(txChannel);
    return out;
}

std::string
Tlp::toString() const
{
    std::ostringstream os;
    os << tlpTypeName(type) << " req=" << requester.toString()
       << " cpl=" << completer.toString() << " tag=" << int(tag)
       << " addr=0x" << std::hex << address << std::dec << " len="
       << lengthBytes;
    if (encrypted)
        os << " [enc]";
    if (synthetic)
        os << " [syn]";
    return os.str();
}

Tlp
Tlp::makeMemRead(Bdf requester, Addr addr, std::uint32_t length,
                 std::uint8_t tag)
{
    Tlp tlp;
    tlp.fmt = addr > 0xffffffffull ? TlpFmt::FourDwNoData
                                   : TlpFmt::ThreeDwNoData;
    tlp.type = TlpType::MemRead;
    tlp.requester = requester;
    tlp.address = addr;
    tlp.lengthBytes = length;
    tlp.tag = tag;
    return tlp;
}

Tlp
Tlp::makeMemWrite(Bdf requester, Addr addr, Bytes payload)
{
    Tlp tlp;
    tlp.fmt = addr > 0xffffffffull ? TlpFmt::FourDwData
                                   : TlpFmt::ThreeDwData;
    tlp.type = TlpType::MemWrite;
    tlp.requester = requester;
    tlp.address = addr;
    tlp.lengthBytes = static_cast<std::uint32_t>(payload.size());
    tlp.data = std::move(payload);
    return tlp;
}

Tlp
Tlp::makeMemWriteSynthetic(Bdf requester, Addr addr,
                           std::uint32_t length)
{
    Tlp tlp;
    tlp.fmt = addr > 0xffffffffull ? TlpFmt::FourDwData
                                   : TlpFmt::ThreeDwData;
    tlp.type = TlpType::MemWrite;
    tlp.requester = requester;
    tlp.address = addr;
    tlp.lengthBytes = length;
    tlp.synthetic = true;
    return tlp;
}

Tlp
Tlp::makeCompletion(Bdf completer, Bdf requester, std::uint8_t tag,
                    Bytes payload, CplStatus status)
{
    Tlp tlp;
    tlp.fmt = payload.empty() ? TlpFmt::ThreeDwNoData
                              : TlpFmt::ThreeDwData;
    tlp.type = TlpType::Completion;
    tlp.completer = completer;
    tlp.requester = requester;
    tlp.tag = tag;
    tlp.cplStatus = status;
    tlp.lengthBytes = static_cast<std::uint32_t>(payload.size());
    tlp.data = std::move(payload);
    return tlp;
}

Tlp
Tlp::makeCompletionSynthetic(Bdf completer, Bdf requester,
                             std::uint8_t tag, std::uint32_t length)
{
    Tlp tlp;
    tlp.fmt = TlpFmt::ThreeDwData;
    tlp.type = TlpType::Completion;
    tlp.completer = completer;
    tlp.requester = requester;
    tlp.tag = tag;
    tlp.lengthBytes = length;
    tlp.synthetic = true;
    return tlp;
}

Tlp
Tlp::makeMessage(Bdf requester, MsgCode code)
{
    Tlp tlp;
    tlp.fmt = TlpFmt::FourDwNoData;
    tlp.type = TlpType::Message;
    tlp.requester = requester;
    tlp.msgCode = code;
    return tlp;
}

Tlp
Tlp::makeVendorMessage(Bdf requester, Bytes payload)
{
    Tlp tlp;
    tlp.fmt = TlpFmt::FourDwData;
    tlp.type = TlpType::Message;
    tlp.requester = requester;
    tlp.completer = wellknown::kXpu; // ID-routed to the device
    tlp.msgCode = MsgCode::VendorDefined;
    tlp.lengthBytes = static_cast<std::uint32_t>(payload.size());
    tlp.data = std::move(payload);
    return tlp;
}

Tlp
Tlp::makeCfgRead(Bdf requester, Bdf target, Addr offset,
                 std::uint8_t tag)
{
    Tlp tlp;
    tlp.fmt = TlpFmt::ThreeDwNoData;
    tlp.type = TlpType::CfgRead;
    tlp.requester = requester;
    tlp.completer = target;
    tlp.address = offset;
    tlp.lengthBytes = 4;
    tlp.tag = tag;
    return tlp;
}

Tlp
Tlp::makeCfgWrite(Bdf requester, Bdf target, Addr offset, Bytes payload)
{
    Tlp tlp;
    tlp.fmt = TlpFmt::ThreeDwData;
    tlp.type = TlpType::CfgWrite;
    tlp.requester = requester;
    tlp.completer = target;
    tlp.address = offset;
    tlp.lengthBytes = static_cast<std::uint32_t>(payload.size());
    tlp.data = std::move(payload);
    return tlp;
}

} // namespace ccai::pcie
