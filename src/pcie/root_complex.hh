/**
 * @file
 * Root complex: the host-side bridge between CPU/DRAM and the PCIe
 * fabric. It issues MMIO requests on behalf of software, services
 * device DMA against host memory, matches completions to outstanding
 * tags, and delivers MSI messages to registered handlers.
 */

#ifndef CCAI_PCIE_ROOT_COMPLEX_HH
#define CCAI_PCIE_ROOT_COMPLEX_HH

#include <array>
#include <functional>
#include <map>

#include "pcie/host_memory.hh"
#include "pcie/link.hh"
#include "sim/stats.hh"

namespace ccai::pcie
{

/** Callback invoked when a read completion arrives. */
using CplCallback = std::function<void(const TlpPtr &)>;

/** Callback invoked on MSI / message receipt. */
using MsgCallback = std::function<void(const TlpPtr &)>;

/**
 * The root complex owns host memory, a downstream link into the
 * fabric, and the tag space for host-initiated non-posted requests.
 *
 * An optional IOMMU check hook lets the TVM module veto device DMA
 * into protected host ranges (the privileged-software IOMMU the
 * paper's threat model relies on).
 */
class RootComplex : public sim::SimObject, public PcieNode
{
  public:
    using IommuCheck =
        std::function<bool(Bdf requester, Addr addr, std::uint64_t len)>;

    RootComplex(sim::System &sys, std::string name, HostMemory &mem);

    /** Attach the downstream link towards the fabric. */
    void connectDownstream(Link *down) { down_ = down; }

    /**
     * Issue a non-posted read (MMIO or config); @p cb runs when the
     * completion returns.
     */
    void sendRead(Tlp tlp, CplCallback cb);

    /** Issue a posted write. */
    void sendWrite(Tlp tlp);

    /** Register the default MSI handler. */
    void setMsgHandler(MsgCallback cb) { msgHandler_ = std::move(cb); }

    /** True once a default MSI handler is installed. */
    bool hasDefaultMsgHandler() const { return bool(msgHandler_); }

    /**
     * Register a per-tenant MSI handler: messages whose completer
     * field carries @p routingId are steered to @p cb (multi-tenant
     * interrupt vectors); everything else hits the default handler.
     */
    void
    addMsgHandler(std::uint16_t routingId, MsgCallback cb)
    {
        msgHandlers_[routingId] = std::move(cb);
    }

    /** Install the IOMMU validation hook for inbound DMA. */
    void setIommuCheck(IommuCheck check) { iommu_ = std::move(check); }

    // PcieNode interface: inbound traffic from the fabric
    void receiveTlp(const TlpPtr &tlp, PcieNode *from) override;
    const std::string &nodeName() const override { return name(); }

    sim::StatGroup &stats() { return stats_; }
    sim::StatGroup *statGroup() override { return &stats_; }
    HostMemory &memory() { return mem_; }

    void reset() override;

  private:
    std::uint8_t allocTag();
    void handleInboundRequest(const TlpPtr &tlp);

    HostMemory &mem_;
    Link *down_ = nullptr;
    std::map<std::uint8_t, CplCallback> outstanding_;
    std::uint8_t nextTag_ = 0;
    MsgCallback msgHandler_;
    std::map<std::uint16_t, MsgCallback> msgHandlers_;
    IommuCheck iommu_;
    sim::StatGroup stats_;
};

} // namespace ccai::pcie

#endif // CCAI_PCIE_ROOT_COMPLEX_HH
