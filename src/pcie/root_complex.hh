/**
 * @file
 * Root complex: the host-side bridge between CPU/DRAM and the PCIe
 * fabric. It issues MMIO requests on behalf of software, services
 * device DMA against host memory, matches completions to outstanding
 * tags, and delivers MSI messages to registered handlers.
 */

#ifndef CCAI_PCIE_ROOT_COMPLEX_HH
#define CCAI_PCIE_ROOT_COMPLEX_HH

#include <array>
#include <functional>
#include <map>
#include <memory>

#include "obs/trace.hh"
#include "pcie/host_memory.hh"
#include "pcie/link.hh"
#include "pcie/transport.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace ccai::pcie
{

/** Callback invoked when a read completion arrives. */
using CplCallback = std::function<void(const TlpPtr &)>;

/** Callback invoked on MSI / message receipt. */
using MsgCallback = std::function<void(const TlpPtr &)>;

/** Callback invoked when a transport ACK/NAK arrives. */
using TransportAckCallback = std::function<void(const TransportAck &)>;

/**
 * The root complex owns host memory, a downstream link into the
 * fabric, and the tag space for host-initiated non-posted requests.
 *
 * An optional IOMMU check hook lets the TVM module veto device DMA
 * into protected host ranges (the privileged-software IOMMU the
 * paper's threat model relies on).
 */
class RootComplex : public sim::SimObject, public PcieNode
{
  public:
    using IommuCheck =
        std::function<bool(Bdf requester, Addr addr, std::uint64_t len)>;

    RootComplex(sim::System &sys, std::string name, HostMemory &mem);

    /** Attach the downstream link towards the fabric. */
    void connectDownstream(Link *down) { down_ = down; }

    /**
     * Issue a non-posted read (MMIO or config); @p cb runs when the
     * completion returns.
     */
    void sendRead(Tlp tlp, CplCallback cb);

    /** Issue a posted write. */
    void sendWrite(Tlp tlp);

    /** Issue a posted write without copying (ARQ retransmissions
     * resend the same TLP instance they hold in the window). */
    void sendWrite(const TlpPtr &tlp);

    /** Register the default MSI handler. */
    void setMsgHandler(MsgCallback cb) { msgHandler_ = std::move(cb); }

    /** True once a default MSI handler is installed. */
    bool hasDefaultMsgHandler() const { return bool(msgHandler_); }

    /**
     * Register a per-tenant MSI handler: messages whose completer
     * field carries @p routingId are steered to @p cb (multi-tenant
     * interrupt vectors); everything else hits the default handler.
     */
    void
    addMsgHandler(std::uint16_t routingId, MsgCallback cb)
    {
        msgHandlers_[routingId] = std::move(cb);
    }

    /** Install the IOMMU validation hook for inbound DMA. */
    void setIommuCheck(IommuCheck check) { iommu_ = std::move(check); }

    /**
     * Retry policy for non-posted reads and the inbound ARQ gate.
     * With retries enabled, an unanswered read is retransmitted on
     * the same tag with exponential backoff; after maxReadRetries
     * the callback receives a fabricated CompleterAbort completion
     * so callers never hang on a lossy fabric.
     */
    void setRetryConfig(const RetryConfig &config) { retry_ = config; }
    const RetryConfig &retryConfig() const { return retry_; }

    /**
     * Register the consumer of transport ACKs addressed to
     * @p routingId (the ARQ sender for that tenant, i.e. its
     * Adaptor). Dispatched before the MSI handlers so acks never
     * masquerade as interrupts.
     */
    void
    addTransportHandler(std::uint16_t routingId, TransportAckCallback cb)
    {
        transportHandlers_[routingId] = std::move(cb);
    }

    /**
     * Crash recovery: drop every outstanding non-posted request
     * (callbacks are NOT invoked — the dead session's reads must not
     * deliver fabricated aborts into a recovered Adaptor) and forget
     * the inbound ARQ sequence state, so re-established sessions
     * start a fresh conversation on every channel.
     */
    void abortTransport();

    // PcieNode interface: inbound traffic from the fabric
    void receiveTlp(const TlpPtr &tlp, PcieNode *from) override;
    const std::string &nodeName() const override { return name(); }

    sim::StatGroup &stats() { return stats_; }
    sim::StatGroup *statGroup() override { return &stats_; }
    HostMemory &memory() { return mem_; }

    void reset() override;

  private:
    /** One in-flight non-posted request, kept for retransmission. */
    struct OutstandingRead
    {
        CplCallback cb;
        TlpPtr request; ///< retransmit copy (same tag)
        int attempts = 0;
        Tick issued = 0; ///< for the read-latency histogram
        /** Owned deadline timer: descheduled in O(1) when the entry
         * is erased, so completed reads leave nothing queued. */
        std::unique_ptr<sim::EventFunctionWrapper> timer;
    };

    std::uint8_t allocTag();
    void handleInboundRequest(const TlpPtr &tlp);
    void armReadTimer(std::uint8_t tag);
    void onReadTimeout(std::uint8_t tag);
    /** In-order delivery gate for ackRequired TLPs; true = deliver. */
    bool transportGate(const TlpPtr &tlp);
    void sendAck(std::uint16_t channel, std::uint64_t seq, bool nak);

    HostMemory &mem_;
    Link *down_ = nullptr;
    std::map<std::uint8_t, OutstandingRead> outstanding_;
    std::uint8_t nextTag_ = 0;
    MsgCallback msgHandler_;
    std::map<std::uint16_t, MsgCallback> msgHandlers_;
    std::map<std::uint16_t, TransportAckCallback> transportHandlers_;
    /** Highest in-order seqNo accepted per upstream ARQ channel. */
    std::map<std::uint16_t, std::uint64_t> rxSeq_;
    IommuCheck iommu_;
    RetryConfig retry_;
    sim::StatGroup stats_;

    /** Typed handles resolved once; no name lookup per TLP. */
    struct Handles
    {
        explicit Handles(sim::StatGroup &g);

        obs::CounterHandle readsSent;
        obs::CounterHandle writesSent;
        obs::CounterHandle completions;
        obs::CounterHandle orphanCompletions;
        obs::CounterHandle messages;
        obs::CounterHandle unsupported;
        obs::CounterHandle readRetries;
        obs::CounterHandle readRetryExhausted;
        obs::CounterHandle faultsRecovered;
        obs::CounterHandle faultsFatal;
        obs::CounterHandle iommuBlocked;
        obs::CounterHandle dmaWrites;
        obs::CounterHandle dmaReads;
        obs::CounterHandle transportRxAccepted;
        obs::CounterHandle transportRxDuplicates;
        obs::CounterHandle transportRxOoo;
        obs::CounterHandle transportAcksSent;
        obs::CounterHandle transportNaksSent;
        obs::CounterHandle transportAcksReceived;

        obs::HistogramHandle readLatencyTicks;
    } s_;

    obs::Tracer *tracer_;
    obs::TrackId track_ = obs::kNoTrack;
    obs::TrackId traceTrack()
    {
        return tracer_->trackCached(track_, name());
    }
};

} // namespace ccai::pcie

#endif // CCAI_PCIE_ROOT_COMPLEX_HH
