/**
 * @file
 * Transaction Layer Packet (TLP) model.
 *
 * Mirrors the PCIe Base Specification header fields ccAI's Packet
 * Filter inspects: format, type, requester/completer IDs, tag,
 * length, and address. Payloads may carry real bytes (functional
 * tests and secure data paths) or be synthetic length-only buffers
 * (bulk benchmark traffic), and a burst TLP may represent several
 * wire-level packets via unitCount() so large DMA transfers do not
 * need millions of event-queue entries while keeping the timing and
 * per-packet cost arithmetic exact.
 */

#ifndef CCAI_PCIE_TLP_HH
#define CCAI_PCIE_TLP_HH

#include <memory>
#include <string>

#include "common/types.hh"
#include "pcie/bdf.hh"

namespace ccai::pcie
{

/** TLP format field (header size and data presence). */
enum class TlpFmt : std::uint8_t
{
    ThreeDwNoData = 0x0, ///< 3-DW header, no payload (MRd 32-bit)
    FourDwNoData = 0x1,  ///< 4-DW header, no payload (MRd 64-bit)
    ThreeDwData = 0x2,   ///< 3-DW header + payload (MWr 32-bit, CplD)
    FourDwData = 0x3,    ///< 4-DW header + payload (MWr 64-bit)
};

/** TLP type field (subset used in the simulation). */
enum class TlpType : std::uint8_t
{
    MemRead,    ///< MRd — DMA/MMIO read request
    MemWrite,   ///< MWr — DMA/MMIO write (posted)
    Completion, ///< Cpl/CplD — read completion
    CfgRead,    ///< CfgRd0 — configuration read
    CfgWrite,   ///< CfgWr0 — configuration write
    Message,    ///< Msg — interrupts, power management
};

/** Completion status codes. */
enum class CplStatus : std::uint8_t
{
    SuccessfulCompletion = 0,
    UnsupportedRequest = 1,
    CompleterAbort = 4,
};

/** Message codes for TlpType::Message. */
enum class MsgCode : std::uint8_t
{
    MsiInterrupt,
    PowerManagement,
    VendorDefined,
    /** End-to-end transport ACK/NAK (see pcie/transport.hh). */
    TransportAck,
};

/** Maximum payload per wire-level TLP (bytes). */
constexpr std::uint32_t kMaxPayloadBytes = 256;

/**
 * Upper bound on any single TLP's request/payload length. Generous
 * enough for the largest modelled burst (a transfer piece filling a
 * whole 512 MiB bounce window travels as ONE synthetic burst TLP),
 * but small enough that length arithmetic can never wrap 32 bits
 * and a hostile length field (the classic near-UINT32_MAX wrap
 * probe) is rejected as malformed.
 */
constexpr std::uint32_t kMaxTlpLengthBytes = 1024u * 1024 * 1024;

/**
 * Structural header defects a hostile endpoint can encode but a
 * conforming device never produces (paper §4.1's "illegal packets").
 * The Packet Filter rejects these before any rule walk; the fuzzer
 * uses them as mutation targets.
 */
enum class TlpAnomaly : std::uint8_t
{
    None = 0,
    /** Payload presence contradicts the fmt data bit (e.g. a
     * ThreeDwNoData TLP arriving with payload bytes attached). */
    PayloadFmtMismatch,
    /** Header format impossible for the type (data-bearing MRd,
     * no-data MWr, 4-DW completion/config, 3-DW message). */
    FmtForType,
    /** Addressed request with zero length. */
    LengthZero,
    /** Length beyond kMaxTlpLengthBytes (the 1024-DW-wrap class). */
    LengthOverflow,
    /** Real payload size disagrees with the header length field. */
    LengthMismatch,
    /** 4-DW header carrying a 32-bit address, or a 3-DW header with
     * an address that needs 64 bits. */
    AddrWidthMismatch,
};

/** Human-readable anomaly name (stable; used in corpus headers). */
const char *tlpAnomalyName(TlpAnomaly anomaly);

/**
 * One simulated TLP. A "burst" TLP (payloadBytes > kMaxPayloadBytes)
 * stands for ceil(payloadBytes / kMaxPayloadBytes) wire packets.
 */
struct Tlp
{
    /*
     * Copies route payloads >= 4 KiB through BufferPool::global()
     * and destruction retires them there, so the A2 hot path (the
     * PCIe-SC's crypt-on-copy, retransmit queues, fault-injector
     * duplicates) recycles payload storage instead of hitting the
     * allocator once per packet. Moves transfer the pooled buffer.
     */
    Tlp() = default;
    Tlp(const Tlp &other);
    Tlp &operator=(const Tlp &other);
    Tlp(Tlp &&) noexcept = default;
    Tlp &operator=(Tlp &&) noexcept = default;
    ~Tlp();

    // ---- header fields the Packet Filter matches on ----
    TlpFmt fmt = TlpFmt::ThreeDwNoData;
    TlpType type = TlpType::MemRead;
    Bdf requester;        ///< requester ID
    Bdf completer;        ///< completer ID (completions/config)
    std::uint8_t tag = 0; ///< transaction tag for completion matching
    Addr address = 0;     ///< target address (mem/cfg requests)
    std::uint32_t lengthBytes = 0; ///< request/payload length in bytes
    CplStatus cplStatus = CplStatus::SuccessfulCompletion;
    MsgCode msgCode = MsgCode::MsiInterrupt;

    // ---- payload ----
    /** Real payload bytes; empty when synthetic. */
    Bytes data;
    /** True when the payload is modelled by length only. */
    bool synthetic = false;

    // ---- ccAI metadata ----
    /** Set by the PCIe-SC when payload is ciphertext (A2 path). */
    bool encrypted = false;
    /** Sequence number stamped by the Adaptor/SC for replay defense. */
    std::uint64_t seqNo = 0;
    /** Associated auth-tag packet ID (0 = none). */
    std::uint64_t authTagId = 0;
    /**
     * End-to-end ARQ: the receiver must acknowledge seqNo on the
     * given channel and deliver in order (see pcie/transport.hh).
     * Both fields are covered by serializeHeader() so a tampered
     * flag fails the MAC rather than changing transport semantics.
     */
    bool ackRequired = false;
    std::uint16_t txChannel = 0;
    /**
     * Inline integrity MAC carried in a vendor-defined TLP prefix
     * (the paper's sign-based integrity check for A3 packets).
     */
    Bytes integrityTag;

    /** Payload length in bytes (real or synthetic). */
    std::uint32_t
    payloadBytes() const
    {
        return synthetic ? lengthBytes
                         : static_cast<std::uint32_t>(data.size());
    }

    /** True when this TLP carries data on the wire. */
    bool
    hasData() const
    {
        return fmt == TlpFmt::ThreeDwData || fmt == TlpFmt::FourDwData;
    }

    /** Header size on the wire, in bytes. */
    std::uint32_t
    headerBytes() const
    {
        return (fmt == TlpFmt::FourDwNoData || fmt == TlpFmt::FourDwData)
                   ? 16
                   : 12;
    }

    /** Number of wire-level TLPs this simulated packet represents. */
    std::uint32_t
    unitCount() const
    {
        // 64-bit ceil-divide: a hostile lengthBytes near UINT32_MAX
        // must not wrap to a unit count of 0 (fuzzer finding; see
        // tests/attack/corpus/malformed-length-wrap.tlp).
        std::uint64_t payload = hasData() ? payloadBytes() : 0;
        if (payload <= kMaxPayloadBytes)
            return 1;
        return static_cast<std::uint32_t>(
            (payload + kMaxPayloadBytes - 1) / kMaxPayloadBytes);
    }

    /**
     * Structural header validation. TLPs built by the make*
     * constructors always return None; raw TLPs from a hostile
     * endpoint may not. The Packet Filter consults this before its
     * rule walk and maps any defect to A1 (see
     * sc::PacketFilter::classifyEx).
     */
    TlpAnomaly headerAnomaly() const;

    /** Serialize header fields for integrity binding (AAD). */
    Bytes serializeHeader() const;

    std::string toString() const;

    // ---- constructors for the common shapes ----
    static Tlp makeMemRead(Bdf requester, Addr addr,
                           std::uint32_t length, std::uint8_t tag);
    static Tlp makeMemWrite(Bdf requester, Addr addr, Bytes payload);
    static Tlp makeMemWriteSynthetic(Bdf requester, Addr addr,
                                     std::uint32_t length);
    static Tlp makeCompletion(Bdf completer, Bdf requester,
                              std::uint8_t tag, Bytes payload,
                              CplStatus status =
                                  CplStatus::SuccessfulCompletion);
    static Tlp makeCompletionSynthetic(Bdf completer, Bdf requester,
                                       std::uint8_t tag,
                                       std::uint32_t length);
    static Tlp makeMessage(Bdf requester, MsgCode code);
    /** Vendor-defined message carrying a management payload (§9). */
    static Tlp makeVendorMessage(Bdf requester, Bytes payload);
    static Tlp makeCfgRead(Bdf requester, Bdf target, Addr offset,
                           std::uint8_t tag);
    static Tlp makeCfgWrite(Bdf requester, Bdf target, Addr offset,
                            Bytes payload);
};

using TlpPtr = std::shared_ptr<Tlp>;

/** Human-readable type name. */
const char *tlpTypeName(TlpType type);

} // namespace ccai::pcie

#endif // CCAI_PCIE_TLP_HH
