#include "fault_injector.hh"

#include <algorithm>

namespace ccai::pcie
{

bool
FaultInjector::carriesCiphertext(const Tlp &tlp)
{
    // A2 ciphertext travels either as an encrypted MemWrite (bounce
    // DMA) or as a bulk read completion. Small completions are
    // control-path values (record counts, MMIO registers) whose loss
    // the ARQ heals but whose silent corruption nothing could — and
    // a real interposer targets the ciphertext, not the CRC-checked
    // control plane.
    if (tlp.type == TlpType::MemWrite && tlp.encrypted)
        return true;
    if (tlp.type == TlpType::Completion && tlp.data.size() >= 1024)
        return true;
    return false;
}

FaultDecision
FaultInjector::decide(const Tlp &tlp, Tick now)
{
    FaultDecision d;

    // Fixed draw order: every TLP consumes the same number of
    // uniforms no matter which faults fire, so the decision for TLP
    // k depends only on (seed, link, k) — the determinism guarantee
    // the replay tests pin down.
    double flapDraw = rng_.uniform01();
    double dropDraw = rng_.uniform01();
    double corruptDraw = rng_.uniform01();
    double silentDraw = rng_.uniform01();
    double dupDraw = rng_.uniform01();
    double delayDraw = rng_.uniform01();
    std::uint64_t delayPick =
        rng_.uniform(config_.delayMin, config_.delayMax);
    double reorderDraw = rng_.uniform01();
    std::uint64_t flapPick =
        rng_.uniform(config_.flapMin, config_.flapMax);

    if (config_.flapRate > 0 && flapDraw < config_.flapRate &&
        now >= flapUntil_) {
        flapUntil_ = now + flapPick;
        ++flapEpisodes_;
        d.flapStarted = true;
    }
    if (now < flapUntil_) {
        d.drop = true;
        d.flapDrop = true;
        return d; // a down link delivers nothing; other faults moot
    }

    if (dropDraw < config_.dropRate) {
        d.drop = true;
        return d;
    }

    if (corruptDraw < config_.corruptRate) {
        bool silent = silentDraw < config_.corruptSilentFraction &&
                      carriesCiphertext(tlp);
        if (silent) {
            d.corruptSilent = true;
        } else {
            // LCRC catches it; the data-link layer discards.
            d.drop = true;
            d.crcDiscard = true;
            return d;
        }
    }

    if (dupDraw < config_.duplicateRate)
        d.duplicate = true;
    if (delayDraw < config_.delayRate)
        d.extraDelay = delayPick;
    if (reorderDraw < config_.reorderRate)
        d.reorderHold = true;
    return d;
}

void
FaultInjector::corruptPayload(Tlp &tlp)
{
    if (tlp.data.empty()) {
        // Synthetic payloads carry no bytes; flag the corruption via
        // the integrity tag so verification still fails.
        if (!tlp.integrityTag.empty())
            tlp.integrityTag[0] ^= 0x80;
        return;
    }
    // Mangle a handful of bytes at deterministic positions. A derived
    // stream (not rng_) keeps the per-TLP decision draw count fixed:
    // mangling one payload never shifts later TLPs' fault schedule.
    // Distinct positions with nonzero masks guarantee the payload
    // actually changes (independent single-bit flips could cancel).
    sim::Rng mangler(config_.seed ^ sim::seedHash(salt_ + "#corrupt") ^
                     ++corruptCount_);
    std::size_t flips = 1 + std::size_t(mangler.uniform(0, 3));
    flips = std::min(flips, tlp.data.size());
    std::size_t base = mangler.uniform(0, tlp.data.size() - 1);
    for (std::size_t i = 0; i < flips; ++i) {
        std::size_t pos = (base + i) % tlp.data.size();
        tlp.data[pos] ^= std::uint8_t(1 + mangler.uniform(0, 254));
    }
}

} // namespace ccai::pcie
