/**
 * @file
 * Canonical byte encoding for Tlp — the substrate the adversarial
 * fuzzer mutates (attack::TlpFuzzer) and the format of the regression
 * corpus under tests/attack/corpus/.
 *
 * This is NOT the PCIe wire format (serializeHeader() stays the
 * authoritative 32-byte AAD for integrity binding); it is a strict,
 * self-describing container chosen so that:
 *
 *  - encodeTlp(decodeTlp(b)) == b whenever decodeTlp(b) succeeds
 *    (every byte is either a field image or a checked constant), and
 *  - decodeTlp never crashes on arbitrary bytes: it either returns a
 *    self-consistent Tlp or nullopt.
 *
 * Layout (all multi-byte fields big-endian):
 *
 *   off len field
 *     0   4 magic "CTLP"
 *     4   1 version (1)
 *     5   1 fmt          (<= 3)
 *     6   1 type         (<= 5)
 *     7   1 cplStatus    (0, 1 or 4)
 *     8   1 msgCode      (<= 3)
 *     9   1 tag
 *    10   1 flags: bit0 synthetic, bit1 encrypted, bit2 ackRequired
 *    11   1 reserved (0)
 *    12   2 requester (Bdf::raw)
 *    14   2 completer (Bdf::raw)
 *    16   8 address
 *    24   4 lengthBytes
 *    28   8 seqNo
 *    36   8 authTagId
 *    44   2 txChannel
 *    46   2 integrityTag size
 *    48   4 data size
 *    52   . integrityTag bytes, then data bytes
 */

#ifndef CCAI_PCIE_TLP_CODEC_HH
#define CCAI_PCIE_TLP_CODEC_HH

#include <optional>

#include "pcie/tlp.hh"

namespace ccai::pcie
{

/** Fixed header size of the encoded form. */
constexpr std::size_t kTlpCodecHeaderBytes = 52;

/** Encoded-form version accepted by decodeTlp. */
constexpr std::uint8_t kTlpCodecVersion = 1;

/**
 * Serialize to the canonical byte form. A synthetic TLP encodes a
 * data size of 0 (its payload is length-only), so synthetic TLPs
 * that also carry real bytes are not representable — the make*
 * constructors never produce such a TLP.
 */
Bytes encodeTlp(const Tlp &tlp);

/**
 * Strict parse of the canonical byte form. Returns nullopt on any
 * defect of the container itself: short/oversized buffer, bad magic
 * or version, out-of-range enum, nonzero reserved bits, or a
 * synthetic TLP carrying data bytes. A successfully decoded Tlp may
 * still be semantically hostile (headerAnomaly() != None) — the
 * codec validates the container, the filter validates the packet.
 */
std::optional<Tlp> decodeTlp(const Bytes &raw);

} // namespace ccai::pcie

#endif // CCAI_PCIE_TLP_CODEC_HH
