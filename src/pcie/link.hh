/**
 * @file
 * PCIe link timing model and the node/port abstraction that wires
 * the fabric together.
 *
 * A PcieNode receives TLPs; a Link connects two nodes and delivers
 * TLPs with serialization + propagation delay computed from the
 * configured generation (GT/s) and lane count. Links serialize: a TLP
 * cannot start transmitting before the previous one finished, which
 * models bandwidth contention for Figure 12a's stress test.
 */

#ifndef CCAI_PCIE_LINK_HH
#define CCAI_PCIE_LINK_HH

#include <memory>
#include <optional>
#include <string>

#include "obs/trace.hh"
#include "pcie/fault_injector.hh"
#include "pcie/tlp.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace ccai::pcie
{

/** Receiving end of a link: anything that accepts TLPs. */
class PcieNode
{
  public:
    virtual ~PcieNode() = default;

    /** Handle an inbound TLP arriving from @p from. */
    virtual void receiveTlp(const TlpPtr &tlp, PcieNode *from) = 0;

    /** Node name for diagnostics. */
    virtual const std::string &nodeName() const = 0;
};

/** Physical-layer parameters of one link. */
struct LinkConfig
{
    double gtPerSec = 16.0; ///< per-lane signalling rate (GT/s)
    int lanes = 16;
    /** Encoding efficiency: 128b/130b for Gen3+; 8b/10b would be 0.8. */
    double encodingEfficiency = 128.0 / 130.0;
    /** Propagation + SERDES latency per traversal. */
    Tick propagationDelay = 50 * kTicksPerNs;
    /** Per-wire-TLP framing overhead (STP/end, LCRC, DLLP share). */
    std::uint32_t framingBytes = 12;

    /**
     * Raw post-encoding lane bandwidth in bytes per second. This is
     * deliberately NOT net of framing: framingBytes is charged per
     * wire-level TLP in Link::serializationDelay() (alongside the
     * header bytes), because framing is a per-packet cost, not a
     * rate derating — a 4 KiB burst pays 16 x (header + framing) at
     * this raw rate. Dividing framing into the rate here as well
     * would double-count it. tests/pcie/link_property_test.cc pins
     * the resulting Gen3/Gen4/Gen5 per-TLP wire times.
     */
    double
    bytesPerSecond() const
    {
        return gtPerSec * 1e9 * lanes * encodingEfficiency / 8.0;
    }
};

/**
 * Unidirectional link between two fabric nodes. Bidirectional
 * connections instantiate one Link per direction (PCIe is full
 * duplex).
 */
class Link : public sim::SimObject
{
  public:
    Link(sim::System &sys, std::string name, const LinkConfig &config);

    /** Attach endpoints; @p src is used only for attribution. */
    void connect(PcieNode *src, PcieNode *dst);

    /**
     * Queue a TLP for transmission. Serialization delay covers every
     * wire-level packet a burst TLP represents.
     */
    void send(const TlpPtr &tlp);

    const LinkConfig &config() const { return config_; }
    void setConfig(const LinkConfig &config) { config_ = config; }

    /**
     * Install (or replace) the deterministic fault injector. The
     * injector's random stream is derived from (config.seed, link
     * name), so two links sharing a FaultConfig still make
     * independent — but per-seed reproducible — decisions.
     */
    void setFaultConfig(const FaultConfig &config);
    /** Remove fault injection; the link becomes lossless again. */
    void clearFaults();
    FaultInjector *faultInjector() { return injector_.get(); }

    sim::StatGroup &stats() { return stats_; }
    sim::StatGroup *statGroup() override { return &stats_; }

    /** Serialization time for one TLP (all its wire units). */
    Tick serializationDelay(const Tlp &tlp) const;

    void reset() override;

  private:
    /** Schedule delivery of @p tlp at @p when. */
    void deliver(const TlpPtr &tlp, Tick when);
    /** Release a held (reordered) TLP, if any. */
    void releaseHeld(Tick when);

    LinkConfig config_;
    PcieNode *src_ = nullptr;
    PcieNode *dst_ = nullptr;
    /** Time the link becomes free for the next TLP. */
    Tick busyUntil_ = 0;

    std::unique_ptr<FaultInjector> injector_;
    /** One-slot reorder buffer: (tlp, generation for the deadline
     * flush that fires when no later TLP overtakes it). */
    TlpPtr held_;
    std::uint64_t holdGen_ = 0;

    sim::StatGroup stats_;

    /** Typed handles resolved once; no name lookup per TLP. */
    struct Handles
    {
        explicit Handles(sim::StatGroup &g);

        obs::CounterHandle tlps;
        obs::CounterHandle wireTlps;
        obs::CounterHandle payloadBytes;
        obs::CounterHandle faultsInjected;
        obs::CounterHandle faultFlapEpisodes;
        obs::CounterHandle faultFlapDrops;
        obs::CounterHandle crcDiscards;
        obs::CounterHandle faultDrops;
        obs::CounterHandle faultCorruptSilent;
        obs::CounterHandle faultDelays;
        obs::CounterHandle faultReorders;
        obs::CounterHandle faultDuplicates;

        obs::HistogramHandle wireTicks;
        obs::HistogramHandle queueTicks;
    } s_;

    obs::Tracer *tracer_;
    obs::TrackId track_ = obs::kNoTrack;
    obs::TrackId traceTrack()
    {
        return tracer_->trackCached(track_, name());
    }
};

/**
 * Convenience holder for a full-duplex connection (a Link in each
 * direction) between two nodes.
 */
class DuplexLink
{
  public:
    DuplexLink(sim::System &sys, const std::string &name,
               PcieNode *a, PcieNode *b, const LinkConfig &config);

    /** Send from a-side to b-side. */
    Link &downstream() { return *down_; }
    /** Send from b-side to a-side. */
    Link &upstream() { return *up_; }

    void
    setConfig(const LinkConfig &config)
    {
        down_->setConfig(config);
        up_->setConfig(config);
    }

  private:
    std::unique_ptr<Link> down_;
    std::unique_ptr<Link> up_;
};

} // namespace ccai::pcie

#endif // CCAI_PCIE_LINK_HH
