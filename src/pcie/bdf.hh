/**
 * @file
 * PCIe Bus/Device/Function identifiers (routing IDs). Requester and
 * completer IDs in TLP headers use this 16-bit encoding.
 */

#ifndef CCAI_PCIE_BDF_HH
#define CCAI_PCIE_BDF_HH

#include <cstdint>
#include <string>

namespace ccai::pcie
{

/** 16-bit routing ID: 8-bit bus, 5-bit device, 3-bit function. */
struct Bdf
{
    std::uint8_t bus = 0;
    std::uint8_t device = 0; ///< 5 bits
    std::uint8_t function = 0; ///< 3 bits

    constexpr Bdf() = default;
    constexpr Bdf(std::uint8_t b, std::uint8_t d, std::uint8_t f)
        : bus(b), device(d & 0x1f), function(f & 0x7)
    {}

    /** Pack to the 16-bit wire encoding. */
    constexpr std::uint16_t
    raw() const
    {
        return static_cast<std::uint16_t>((bus << 8) | (device << 3) |
                                          function);
    }

    static constexpr Bdf
    fromRaw(std::uint16_t raw)
    {
        return Bdf(static_cast<std::uint8_t>(raw >> 8),
                   static_cast<std::uint8_t>((raw >> 3) & 0x1f),
                   static_cast<std::uint8_t>(raw & 0x7));
    }

    constexpr bool
    operator==(const Bdf &o) const
    {
        return raw() == o.raw();
    }

    constexpr bool
    operator!=(const Bdf &o) const
    {
        return !(*this == o);
    }

    constexpr bool
    operator<(const Bdf &o) const
    {
        return raw() < o.raw();
    }

    std::string toString() const;
};

/** Well-known IDs in the simulated topology. */
namespace wellknown
{
/** Root complex / host CPU requester (the TVM's vCPU traffic). */
constexpr Bdf kRootComplex{0x00, 0x00, 0x0};
/** The trusted VM's assigned requester ID. */
constexpr Bdf kTvm{0x00, 0x01, 0x0};
/** An unauthorized sibling VM (attack experiments). */
constexpr Bdf kRogueVm{0x00, 0x02, 0x0};
/** The PCIe security controller (upstream port). */
constexpr Bdf kPcieSc{0x01, 0x00, 0x0};
/** The protected xPU behind the PCIe-SC. */
constexpr Bdf kXpu{0x02, 0x00, 0x0};
/** A malicious peer PCIe device (attack experiments). */
constexpr Bdf kMaliciousDevice{0x03, 0x00, 0x0};
} // namespace wellknown

} // namespace ccai::pcie

#endif // CCAI_PCIE_BDF_HH
