/**
 * @file
 * Deterministic fault injection for PCIe links.
 *
 * A FaultInjector sits inside Link::send() and decides, per TLP, a
 * set of faults to apply: drop, bit-corrupt, duplicate, extra delay,
 * a one-slot reorder hold, and link-flap episodes during which every
 * TLP is lost. Decisions come from a private Rng seeded with
 * (config.seed ^ fnv1a(linkName)), so for a fixed seed the schedule
 * on every link is a pure function of the TLP sequence it carries —
 * two runs of the same binary with the same seed inject the exact
 * same faults (see DESIGN.md "Fault model").
 *
 * Corruption semantics: real PCIe protects every TLP with an LCRC,
 * so random bit errors are detected at the data-link layer and the
 * packet is discarded (equivalent to a drop; the end-to-end ARQ
 * heals it). We model that as `crc_discards`. A configurable
 * fraction (`corruptSilentFraction`, default 0) instead models an
 * adversarial interposer that fixes up the CRC: the mangled payload
 * is delivered. Silent corruption is only applied to
 * ciphertext-bearing TLPs (large completions and encrypted writes),
 * where the GCM/HMAC integrity layer — not the CRC — is the defense
 * the paper claims; control-path TLPs stay CRC-protected.
 */

#ifndef CCAI_PCIE_FAULT_INJECTOR_HH
#define CCAI_PCIE_FAULT_INJECTOR_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "pcie/tlp.hh"
#include "sim/rng.hh"

namespace ccai::pcie
{

/** Per-link fault schedule configuration. All rates are per-TLP. */
struct FaultConfig
{
    /** Root seed; each link derives its own stream from this. */
    std::uint64_t seed = 1;

    /** P(drop the TLP entirely). */
    double dropRate = 0.0;
    /** P(bit-corrupt the TLP). Detected by LCRC => drop, except for
     * the silent fraction below. */
    double corruptRate = 0.0;
    /**
     * Fraction of corruptions that evade the CRC (adversarial
     * tamper). Applied only to ciphertext-bearing TLPs; a CRC-evading
     * corruption of any other TLP is still modelled as a discard.
     */
    double corruptSilentFraction = 0.0;
    /** P(deliver the TLP twice). */
    double duplicateRate = 0.0;
    /** P(add extra latency). */
    double delayRate = 0.0;
    /** Extra latency bounds for delayed TLPs. */
    Tick delayMin = 1 * kTicksPerUs;
    Tick delayMax = 50 * kTicksPerUs;
    /** P(hold this TLP back one slot so the next one overtakes it). */
    double reorderRate = 0.0;
    /** P(a link-flap episode starts at this TLP). While flapping,
     * every TLP is dropped. */
    double flapRate = 0.0;
    /** Flap episode duration bounds. */
    Tick flapMin = 5 * kTicksPerUs;
    Tick flapMax = 100 * kTicksPerUs;

    /** True when any fault can ever fire. */
    bool
    anyEnabled() const
    {
        return dropRate > 0 || corruptRate > 0 || duplicateRate > 0 ||
               delayRate > 0 || reorderRate > 0 || flapRate > 0;
    }

    /** Uniform preset: every kind at @p rate (flap slightly rarer). */
    static FaultConfig
    uniform(std::uint64_t seed, double rate)
    {
        FaultConfig c;
        c.seed = seed;
        c.dropRate = rate;
        c.corruptRate = rate;
        c.duplicateRate = rate;
        c.delayRate = rate;
        c.reorderRate = rate;
        c.flapRate = rate / 10.0;
        return c;
    }
};

/** What Link::send() should do with one TLP. */
struct FaultDecision
{
    bool drop = false;        ///< do not deliver
    bool crcDiscard = false;  ///< the drop is a detected corruption
    bool flapDrop = false;    ///< the drop is due to a flap episode
    bool flapStarted = false; ///< this TLP opened a flap episode
    bool corruptSilent = false; ///< deliver with mangled payload
    bool duplicate = false;   ///< deliver a second copy
    Tick extraDelay = 0;      ///< add to the arrival time
    bool reorderHold = false; ///< hold one slot, release on next send

    bool
    any() const
    {
        return drop || corruptSilent || duplicate || extraDelay > 0 ||
               reorderHold;
    }
};

/**
 * Pure decision engine: consumes randomness in a fixed order per TLP
 * so the schedule is reproducible. The Link owns scheduling; this
 * class owns only the dice and the flap-episode clock.
 */
class FaultInjector
{
  public:
    FaultInjector(const FaultConfig &config, const std::string &linkName)
        : config_(config), salt_(linkName),
          rng_(config.seed ^ sim::seedHash(salt_))
    {
    }

    const FaultConfig &config() const { return config_; }

    /** Fast path: when false the link behaves exactly as unfaulted. */
    bool enabled() const { return config_.anyEnabled(); }

    /**
     * Decide the faults for one TLP sent at @p now. Draws happen in
     * a fixed order (flap, drop, corrupt, duplicate, delay, reorder)
     * regardless of earlier outcomes, so one fault firing never
     * shifts the schedule of later TLPs.
     */
    FaultDecision decide(const Tlp &tlp, Tick now);

    /** Mangle a TLP copy for silent corruption (payload bit flips). */
    void corruptPayload(Tlp &tlp);

    /** True when @p tlp carries ciphertext the integrity layer (not
     * the CRC) is responsible for — the only silent-corruption
     * targets. */
    static bool carriesCiphertext(const Tlp &tlp);

    std::uint64_t flapEpisodes() const { return flapEpisodes_; }

    void
    reset()
    {
        rng_ = sim::Rng(config_.seed ^ sim::seedHash(salt_));
        flapUntil_ = 0;
        flapEpisodes_ = 0;
        corruptCount_ = 0;
    }

  private:
    FaultConfig config_;
    std::string salt_;
    sim::Rng rng_;
    Tick flapUntil_ = 0;
    std::uint64_t flapEpisodes_ = 0;
    std::uint64_t corruptCount_ = 0;
};

} // namespace ccai::pcie

#endif // CCAI_PCIE_FAULT_INJECTOR_HH
