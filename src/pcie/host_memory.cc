#include "host_memory.hh"

#include <cstring>

#include "common/bytes_util.hh"
#include "common/logging.hh"

namespace ccai::pcie
{

const HostMemory::Arena *
HostMemory::arenaFor(Addr addr) const
{
    for (const Arena &a : arenas_)
        if (addr >= a.base && addr < a.base + a.size)
            return &a;
    return nullptr;
}

void
HostMemory::pinRange(Addr base, std::uint64_t size)
{
    ccai_assert(size > 0);
    for (const Arena &a : arenas_) {
        if (a.base == base && a.size == size)
            return; // already pinned
        ccai_assert(base + size <= a.base || base >= a.base + a.size);
    }
    Arena arena;
    arena.base = base;
    arena.size = size;
    // calloc: the OS backs the arena with lazily-faulted zero pages,
    // so pinning a 512 MiB window costs nothing until it is touched.
    arena.mem.reset(
        static_cast<std::uint8_t *>(std::calloc(size, 1)));
    ccai_assert(arena.mem != nullptr);
    // Migrate any sparse pages that already held data in the range.
    for (std::uint64_t off = 0; off < size; off += kPageSize) {
        Addr cur = base + off;
        std::uint64_t pfn = cur / kPageSize;
        auto it = pages_.find(pfn);
        if (it == pages_.end())
            continue;
        std::uint64_t inPage = cur % kPageSize;
        std::uint64_t take =
            std::min<std::uint64_t>(kPageSize - inPage, size - off);
        std::memcpy(arena.mem.get() + off, it->second.get() + inPage,
                    take);
        if (inPage == 0 && take == kPageSize)
            pages_.erase(it);
    }
    arenas_.push_back(std::move(arena));
}

std::uint8_t *
HostMemory::raw(Addr addr, std::uint64_t len)
{
    return const_cast<std::uint8_t *>(
        const_cast<const HostMemory *>(this)->raw(addr, len));
}

const std::uint8_t *
HostMemory::raw(Addr addr, std::uint64_t len) const
{
    const Arena *a = arenaFor(addr);
    if (a == nullptr || addr + len > a->base + a->size)
        return nullptr;
    return a->mem.get() + (addr - a->base);
}

void
HostMemory::clear()
{
    pages_.clear();
    for (Arena &a : arenas_)
        std::memset(a.mem.get(), 0, a.size);
}

std::uint8_t *
HostMemory::pageFor(Addr addr, bool allocate)
{
    std::uint64_t pfn = addr / kPageSize;
    auto it = pages_.find(pfn);
    if (it != pages_.end())
        return it->second.get();
    if (!allocate)
        return nullptr;
    auto page = std::make_unique<std::uint8_t[]>(kPageSize);
    std::memset(page.get(), 0, kPageSize);
    std::uint8_t *raw = page.get();
    pages_.emplace(pfn, std::move(page));
    return raw;
}

const std::uint8_t *
HostMemory::pageFor(Addr addr) const
{
    std::uint64_t pfn = addr / kPageSize;
    auto it = pages_.find(pfn);
    return it != pages_.end() ? it->second.get() : nullptr;
}

void
HostMemory::write(Addr addr, const Bytes &data)
{
    std::uint64_t off = 0;
    while (off < data.size()) {
        Addr cur = addr + off;
        if (const Arena *a = arenaFor(cur)) {
            std::uint64_t take = std::min<std::uint64_t>(
                a->base + a->size - cur, data.size() - off);
            std::memcpy(a->mem.get() + (cur - a->base),
                        data.data() + off, take);
            off += take;
            continue;
        }
        std::uint64_t in_page = cur % kPageSize;
        std::uint64_t take =
            std::min<std::uint64_t>(kPageSize - in_page,
                                    data.size() - off);
        std::uint8_t *page = pageFor(cur, true);
        std::memcpy(page + in_page, data.data() + off, take);
        off += take;
    }
}

Bytes
HostMemory::read(Addr addr, std::uint64_t len) const
{
    Bytes out(len, 0);
    std::uint64_t off = 0;
    while (off < len) {
        Addr cur = addr + off;
        if (const Arena *a = arenaFor(cur)) {
            std::uint64_t take = std::min<std::uint64_t>(
                a->base + a->size - cur, len - off);
            std::memcpy(out.data() + off,
                        a->mem.get() + (cur - a->base), take);
            off += take;
            continue;
        }
        std::uint64_t in_page = cur % kPageSize;
        std::uint64_t take =
            std::min<std::uint64_t>(kPageSize - in_page, len - off);
        const std::uint8_t *page = pageFor(cur);
        if (page)
            std::memcpy(out.data() + off, page + in_page, take);
        off += take;
    }
    return out;
}

void
HostMemory::write64(Addr addr, std::uint64_t value)
{
    Bytes buf(8);
    storeLe64(buf.data(), value);
    write(addr, buf);
}

std::uint64_t
HostMemory::read64(Addr addr) const
{
    Bytes buf = read(addr, 8);
    return loadLe64(buf.data());
}

} // namespace ccai::pcie
