#include "host_memory.hh"

#include <cstring>

#include "common/bytes_util.hh"

namespace ccai::pcie
{

std::uint8_t *
HostMemory::pageFor(Addr addr, bool allocate)
{
    std::uint64_t pfn = addr / kPageSize;
    auto it = pages_.find(pfn);
    if (it != pages_.end())
        return it->second.get();
    if (!allocate)
        return nullptr;
    auto page = std::make_unique<std::uint8_t[]>(kPageSize);
    std::memset(page.get(), 0, kPageSize);
    std::uint8_t *raw = page.get();
    pages_.emplace(pfn, std::move(page));
    return raw;
}

const std::uint8_t *
HostMemory::pageFor(Addr addr) const
{
    std::uint64_t pfn = addr / kPageSize;
    auto it = pages_.find(pfn);
    return it != pages_.end() ? it->second.get() : nullptr;
}

void
HostMemory::write(Addr addr, const Bytes &data)
{
    std::uint64_t off = 0;
    while (off < data.size()) {
        Addr cur = addr + off;
        std::uint64_t in_page = cur % kPageSize;
        std::uint64_t take =
            std::min<std::uint64_t>(kPageSize - in_page,
                                    data.size() - off);
        std::uint8_t *page = pageFor(cur, true);
        std::memcpy(page + in_page, data.data() + off, take);
        off += take;
    }
}

Bytes
HostMemory::read(Addr addr, std::uint64_t len) const
{
    Bytes out(len, 0);
    std::uint64_t off = 0;
    while (off < len) {
        Addr cur = addr + off;
        std::uint64_t in_page = cur % kPageSize;
        std::uint64_t take =
            std::min<std::uint64_t>(kPageSize - in_page, len - off);
        const std::uint8_t *page = pageFor(cur);
        if (page)
            std::memcpy(out.data() + off, page + in_page, take);
        off += take;
    }
    return out;
}

void
HostMemory::write64(Addr addr, std::uint64_t value)
{
    Bytes buf(8);
    storeLe64(buf.data(), value);
    write(addr, buf);
}

std::uint64_t
HostMemory::read64(Addr addr) const
{
    Bytes buf = read(addr, 8);
    return loadLe64(buf.data());
}

} // namespace ccai::pcie
