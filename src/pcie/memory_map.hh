/**
 * @file
 * Fixed physical memory map of the simulated platform. Keeping the
 * layout in one header lets the Packet Filter rules, the Adaptor and
 * the tests agree on which address windows are sensitive.
 */

#ifndef CCAI_PCIE_MEMORY_MAP_HH
#define CCAI_PCIE_MEMORY_MAP_HH

#include "common/types.hh"
#include "pcie/switch.hh"

namespace ccai::pcie::memmap
{

// ---- Host DRAM ----
// Classic PC layout: low DRAM below the 32-bit PCIe hole (device
// BARs live at 0xc000'0000..0x1'0000'0000), high DRAM remapped
// above 16 GiB.
/** Host DRAM below the PCIe hole. */
constexpr AddrRange kHostDramLow{0x0000'0000, 3ull * kGiB};
/** Host DRAM above the PCIe hole (bounce + metadata live here). */
constexpr AddrRange kHostDramHigh{0x4'0000'0000, 16ull * kGiB};
/** TVM private (TEE-protected) region inside low host DRAM. */
constexpr AddrRange kTvmPrivate{0x1000'0000, 2ull * kGiB};
/** Shared bounce buffer for encrypted DMA payloads (H2D direction). */
constexpr AddrRange kBounceH2d{0x4'0000'0000, 512ull * kMiB};
/** Shared bounce buffer for encrypted DMA payloads (D2H direction). */
constexpr AddrRange kBounceD2h{0x4'2000'0000, 512ull * kMiB};
/** Metadata batch buffer the PCIe-SC fills for the Adaptor (§5). */
constexpr AddrRange kMetadataBuffer{0x4'4000'0000, 16ull * kMiB};

// ---- PCIe-SC BARs ----
/** 64 KiB MMIO window the Adaptor uses to talk to the PCIe-SC. */
constexpr AddrRange kScMmio{0xd000'0000, 64 * kKiB};
/** 4 KiB upstream BAR holding the encrypted L1/L2 rule tables. */
constexpr AddrRange kScRuleTable{0xd001'0000, 4 * kKiB};

// ---- xPU BARs ----
/** xPU control registers (doorbells, status, page-table base). */
constexpr AddrRange kXpuMmio{0xe000'0000, 16 * kMiB};
/** xPU VRAM aperture for direct host access. */
constexpr AddrRange kXpuVram{0x10'0000'0000, 96ull * kGiB};

// ---- xPU MMIO register offsets (within kXpuMmio) ----
namespace xpureg
{
constexpr Addr kDoorbell = 0x0000;       ///< command-queue doorbell
constexpr Addr kStatus = 0x0008;         ///< device status
constexpr Addr kIntStatus = 0x0010;      ///< interrupt status
constexpr Addr kPageTableBase = 0x0018;  ///< device MMU root pointer
constexpr Addr kDmaSrc = 0x0020;         ///< DMA source address
constexpr Addr kDmaDst = 0x0028;         ///< DMA destination address
constexpr Addr kDmaLen = 0x0030;         ///< DMA length
constexpr Addr kDmaKick = 0x0038;        ///< DMA start trigger
constexpr Addr kReset = 0x0040;          ///< software reset
constexpr Addr kCmdQueueBase = 0x1000;   ///< command ring window
} // namespace xpureg

// ---- PCIe-SC MMIO register offsets (within kScMmio) ----
namespace screg
{
constexpr Addr kControl = 0x0000;        ///< engine enable bits
constexpr Addr kStatus = 0x0008;         ///< SC status
constexpr Addr kMetaDoorbell = 0x0010;   ///< request metadata batch
constexpr Addr kNotifyTransfer = 0x0018; ///< data-ready doorbell (§5)
constexpr Addr kEnvGuardCtl = 0x0020;    ///< environment guard control
constexpr Addr kKeySlot = 0x0100;        ///< session key slot window
constexpr Addr kIvSlot = 0x0140;         ///< IV slot window
constexpr Addr kRecordCount = 0x0180;    ///< pending D2H record count
constexpr Addr kRecordAck = 0x0188;      ///< consume per-record reads
constexpr Addr kEndTask = 0x0190;        ///< task teardown doorbell
constexpr Addr kChunkRetry = 0x0198;     ///< re-request a D2H chunk
constexpr Addr kHeartbeat = 0x01a0;      ///< watchdog liveness read
constexpr Addr kRingHead = 0x01a8;       ///< consumed D2H ring index
constexpr Addr kRuleWindow = 0x1000;     ///< rule staging window
constexpr Addr kParamWindow = 0x2000;    ///< H2D chunk-record window
constexpr Addr kRecordWindow = 0x3000;   ///< per-record MMIO reads
} // namespace screg

// ---- D2H completion ring layout (inside a tenant's metadata
// window) ----
// The PCIe-SC is the single producer: it DMA-writes each finished
// D2H chunk record into the next slot, then advances the tail word;
// both writes ride the same ordered ARQ channel, so a tail value is
// never visible before its records. The Adaptor is the single
// consumer: it reads the tail and the slots straight out of pinned
// host memory (no MMIO round trip) and posts its consumed index via
// the posted screg::kRingHead write, which is the producer's
// backpressure signal.
namespace metaring
{
/** Little-endian produced-count word the producer advances last. */
constexpr std::uint64_t kTailOffset = 0;
/** Slots start one cache line in, clear of the tail word. */
constexpr std::uint64_t kSlotsOffset = 64;
/** One serialized chunk record per slot (ChunkRecord::kWireBytes). */
constexpr std::uint64_t kSlotStride = 64;

/** Ring capacity for a metadata window of @p windowSize bytes. */
constexpr std::uint64_t
slotCount(std::uint64_t windowSize)
{
    return (windowSize - kSlotsOffset) / kSlotStride;
}

/** Byte offset of the slot for absolute record index @p idx. */
constexpr std::uint64_t
slotOffset(std::uint64_t idx, std::uint64_t nslots)
{
    return kSlotsOffset + (idx % nslots) * kSlotStride;
}
} // namespace metaring

} // namespace ccai::pcie::memmap

#endif // CCAI_PCIE_MEMORY_MAP_HH
