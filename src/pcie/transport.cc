#include "transport.hh"

#include "common/bytes_util.hh"

namespace ccai::pcie
{

namespace
{

constexpr std::size_t kAckBytes = 14;

std::uint8_t
ackChecksum(const Bytes &buf)
{
    std::uint8_t x = 0xA5;
    for (std::size_t i = 0; i + 1 < kAckBytes; ++i)
        x ^= buf[i];
    return x;
}

} // namespace

Bytes
encodeTransportAck(const TransportAck &ack)
{
    Bytes out(kAckBytes, 0);
    out[0] = 'T';
    out[1] = 'A';
    out[2] = ack.nak ? 1 : 0;
    out[3] = static_cast<std::uint8_t>(ack.channel >> 8);
    out[4] = static_cast<std::uint8_t>(ack.channel);
    storeBe64(out.data() + 5, ack.seq);
    out[kAckBytes - 1] = ackChecksum(out);
    return out;
}

std::optional<TransportAck>
decodeTransportAck(const Bytes &payload)
{
    if (payload.size() != kAckBytes)
        return std::nullopt;
    if (payload[0] != 'T' || payload[1] != 'A')
        return std::nullopt;
    if (payload[kAckBytes - 1] != ackChecksum(payload))
        return std::nullopt;

    TransportAck ack;
    ack.nak = payload[2] != 0;
    ack.channel = static_cast<std::uint16_t>(
        (std::uint16_t(payload[3]) << 8) | payload[4]);
    ack.seq = loadBe64(payload.data() + 5);
    return ack;
}

} // namespace ccai::pcie
