#include "tlp_codec.hh"

#include <cstring>

#include "common/bytes_util.hh"

namespace ccai::pcie
{

namespace
{

constexpr std::uint8_t kMagic[4] = {'C', 'T', 'L', 'P'};

constexpr std::uint8_t kFlagSynthetic = 1 << 0;
constexpr std::uint8_t kFlagEncrypted = 1 << 1;
constexpr std::uint8_t kFlagAckRequired = 1 << 2;
constexpr std::uint8_t kFlagMask =
    kFlagSynthetic | kFlagEncrypted | kFlagAckRequired;

bool
validCplStatus(std::uint8_t v)
{
    return v == static_cast<std::uint8_t>(
                    CplStatus::SuccessfulCompletion) ||
           v == static_cast<std::uint8_t>(
                    CplStatus::UnsupportedRequest) ||
           v == static_cast<std::uint8_t>(CplStatus::CompleterAbort);
}

} // namespace

Bytes
encodeTlp(const Tlp &tlp)
{
    const std::size_t tagLen = tlp.integrityTag.size();
    const std::size_t dataLen = tlp.synthetic ? 0 : tlp.data.size();
    Bytes out(kTlpCodecHeaderBytes + tagLen + dataLen, 0);

    std::memcpy(out.data(), kMagic, sizeof(kMagic));
    out[4] = kTlpCodecVersion;
    out[5] = static_cast<std::uint8_t>(tlp.fmt);
    out[6] = static_cast<std::uint8_t>(tlp.type);
    out[7] = static_cast<std::uint8_t>(tlp.cplStatus);
    out[8] = static_cast<std::uint8_t>(tlp.msgCode);
    out[9] = tlp.tag;
    out[10] = (tlp.synthetic ? kFlagSynthetic : 0) |
              (tlp.encrypted ? kFlagEncrypted : 0) |
              (tlp.ackRequired ? kFlagAckRequired : 0);
    out[11] = 0;
    out[12] = static_cast<std::uint8_t>(tlp.requester.raw() >> 8);
    out[13] = static_cast<std::uint8_t>(tlp.requester.raw());
    out[14] = static_cast<std::uint8_t>(tlp.completer.raw() >> 8);
    out[15] = static_cast<std::uint8_t>(tlp.completer.raw());
    storeBe64(out.data() + 16, tlp.address);
    storeBe32(out.data() + 24, tlp.lengthBytes);
    storeBe64(out.data() + 28, tlp.seqNo);
    storeBe64(out.data() + 36, tlp.authTagId);
    out[44] = static_cast<std::uint8_t>(tlp.txChannel >> 8);
    out[45] = static_cast<std::uint8_t>(tlp.txChannel);
    out[46] = static_cast<std::uint8_t>(tagLen >> 8);
    out[47] = static_cast<std::uint8_t>(tagLen);
    storeBe32(out.data() + 48, static_cast<std::uint32_t>(dataLen));

    std::uint8_t *p = out.data() + kTlpCodecHeaderBytes;
    if (tagLen) {
        std::memcpy(p, tlp.integrityTag.data(), tagLen);
        p += tagLen;
    }
    if (dataLen)
        std::memcpy(p, tlp.data.data(), dataLen);
    return out;
}

std::optional<Tlp>
decodeTlp(const Bytes &raw)
{
    if (raw.size() < kTlpCodecHeaderBytes)
        return std::nullopt;
    if (std::memcmp(raw.data(), kMagic, sizeof(kMagic)) != 0)
        return std::nullopt;
    if (raw[4] != kTlpCodecVersion)
        return std::nullopt;
    if (raw[5] > static_cast<std::uint8_t>(TlpFmt::FourDwData))
        return std::nullopt;
    if (raw[6] > static_cast<std::uint8_t>(TlpType::Message))
        return std::nullopt;
    if (!validCplStatus(raw[7]))
        return std::nullopt;
    if (raw[8] > static_cast<std::uint8_t>(MsgCode::TransportAck))
        return std::nullopt;
    if (raw[10] & ~kFlagMask)
        return std::nullopt;
    if (raw[11] != 0)
        return std::nullopt;

    const std::uint64_t tagLen =
        (std::uint64_t(raw[46]) << 8) | raw[47];
    const std::uint64_t dataLen = loadBe32(raw.data() + 48);
    // Exact-size match, computed in 64 bits so a hostile length pair
    // cannot wrap the sum.
    if (raw.size() != kTlpCodecHeaderBytes + tagLen + dataLen)
        return std::nullopt;
    if ((raw[10] & kFlagSynthetic) && dataLen != 0)
        return std::nullopt;

    Tlp tlp;
    tlp.fmt = static_cast<TlpFmt>(raw[5]);
    tlp.type = static_cast<TlpType>(raw[6]);
    tlp.cplStatus = static_cast<CplStatus>(raw[7]);
    tlp.msgCode = static_cast<MsgCode>(raw[8]);
    tlp.tag = raw[9];
    tlp.synthetic = raw[10] & kFlagSynthetic;
    tlp.encrypted = raw[10] & kFlagEncrypted;
    tlp.ackRequired = raw[10] & kFlagAckRequired;
    tlp.requester =
        Bdf::fromRaw((std::uint16_t(raw[12]) << 8) | raw[13]);
    tlp.completer =
        Bdf::fromRaw((std::uint16_t(raw[14]) << 8) | raw[15]);
    tlp.address = loadBe64(raw.data() + 16);
    tlp.lengthBytes = loadBe32(raw.data() + 24);
    tlp.seqNo = loadBe64(raw.data() + 28);
    tlp.authTagId = loadBe64(raw.data() + 36);
    tlp.txChannel = (std::uint16_t(raw[44]) << 8) | raw[45];

    const std::uint8_t *p = raw.data() + kTlpCodecHeaderBytes;
    tlp.integrityTag.assign(p, p + tagLen);
    p += tagLen;
    tlp.data.assign(p, p + dataLen);
    return tlp;
}

} // namespace ccai::pcie
