/**
 * @file
 * Sparse host DRAM model. Backing pages are allocated lazily so the
 * simulation can expose a large physical address space while only
 * paying for pages that are actually touched. Synthetic (length-only)
 * transfers never allocate backing store.
 *
 * Hot DMA windows (bounce buffers, the metadata ring) can be pinned
 * as contiguous arenas: raw() then hands the data plane a stable
 * pointer so seal/open run in place in the "DMA-able" memory itself,
 * with zero staging copies — the simulated analogue of pinned,
 * IOMMU-mapped pages. Arenas come from calloc, so the OS still
 * provides the backing lazily; residentPages() keeps counting only
 * the sparse pages outside any arena.
 */

#ifndef CCAI_PCIE_HOST_MEMORY_HH
#define CCAI_PCIE_HOST_MEMORY_HH

#include <cstdlib>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace ccai::pcie
{

/**
 * Byte-addressable sparse memory with 4 KiB backing pages and
 * optionally pinned contiguous arenas.
 */
class HostMemory
{
  public:
    static constexpr std::uint64_t kPageSize = 4096;

    /** Write @p data at @p addr. */
    void write(Addr addr, const Bytes &data);

    /** Read @p len bytes from @p addr (unwritten bytes read as 0). */
    Bytes read(Addr addr, std::uint64_t len) const;

    /** Write a little-endian 64-bit word. */
    void write64(Addr addr, std::uint64_t value);

    /** Read a little-endian 64-bit word. */
    std::uint64_t read64(Addr addr) const;

    /**
     * Pin [base, base+size) as one contiguous zero-initialized
     * arena. Idempotent for an identical range; must not overlap a
     * different arena. Existing sparse-page content inside the range
     * is migrated into the arena.
     */
    void pinRange(Addr base, std::uint64_t size);

    /**
     * Stable raw pointer covering [addr, addr+len) when that range
     * lies fully inside one pinned arena; nullptr otherwise. The
     * pointer stays valid for the lifetime of the HostMemory.
     */
    std::uint8_t *raw(Addr addr, std::uint64_t len);
    const std::uint8_t *raw(Addr addr, std::uint64_t len) const;

    /** True when raw(addr, len) would succeed. */
    bool
    pinned(Addr addr, std::uint64_t len) const
    {
        return raw(addr, len) != nullptr;
    }

    /** Zero-fill: drop sparse pages, re-zero pinned arenas. */
    void clear();

    /** Number of resident sparse backing pages (pinned arenas are
     * not counted — their backing is the OS's business). */
    size_t residentPages() const { return pages_.size(); }

  private:
    using Page = std::unique_ptr<std::uint8_t[]>;

    struct FreeDeleter
    {
        void operator()(std::uint8_t *p) const { std::free(p); }
    };

    /** A pinned contiguous window. */
    struct Arena
    {
        Addr base = 0;
        std::uint64_t size = 0;
        std::unique_ptr<std::uint8_t[], FreeDeleter> mem;
    };

    std::uint8_t *pageFor(Addr addr, bool allocate);
    const std::uint8_t *pageFor(Addr addr) const;
    const Arena *arenaFor(Addr addr) const;

    std::unordered_map<std::uint64_t, Page> pages_;
    std::vector<Arena> arenas_;
};

} // namespace ccai::pcie

#endif // CCAI_PCIE_HOST_MEMORY_HH
