/**
 * @file
 * Sparse host DRAM model. Backing pages are allocated lazily so the
 * simulation can expose a large physical address space while only
 * paying for pages that are actually touched. Synthetic (length-only)
 * transfers never allocate backing store.
 */

#ifndef CCAI_PCIE_HOST_MEMORY_HH
#define CCAI_PCIE_HOST_MEMORY_HH

#include <memory>
#include <unordered_map>

#include "common/types.hh"

namespace ccai::pcie
{

/**
 * Byte-addressable sparse memory with 4 KiB backing pages.
 */
class HostMemory
{
  public:
    static constexpr std::uint64_t kPageSize = 4096;

    /** Write @p data at @p addr. */
    void write(Addr addr, const Bytes &data);

    /** Read @p len bytes from @p addr (unwritten bytes read as 0). */
    Bytes read(Addr addr, std::uint64_t len) const;

    /** Write a little-endian 64-bit word. */
    void write64(Addr addr, std::uint64_t value);

    /** Read a little-endian 64-bit word. */
    std::uint64_t read64(Addr addr) const;

    /** Zero-fill (drop) every allocated page. */
    void clear() { pages_.clear(); }

    /** Number of resident backing pages. */
    size_t residentPages() const { return pages_.size(); }

  private:
    using Page = std::unique_ptr<std::uint8_t[]>;

    std::uint8_t *pageFor(Addr addr, bool allocate);
    const std::uint8_t *pageFor(Addr addr) const;

    std::unordered_map<std::uint64_t, Page> pages_;
};

} // namespace ccai::pcie

#endif // CCAI_PCIE_HOST_MEMORY_HH
