/**
 * @file
 * PCIe switch: routes TLPs between ports by address range (memory
 * requests), routing ID (completions/config), or broadcast
 * (messages). The root complex and the PCIe-SC's internal fabric are
 * both built from this component.
 */

#ifndef CCAI_PCIE_SWITCH_HH
#define CCAI_PCIE_SWITCH_HH

#include <map>
#include <vector>

#include "pcie/link.hh"

namespace ccai::pcie
{

/** An address window claimed by a downstream port (a BAR range). */
struct AddrRange
{
    Addr base = 0;
    std::uint64_t size = 0;

    bool
    contains(Addr a) const
    {
        return a >= base && a < base + size;
    }

    bool
    contains(Addr a, std::uint64_t len) const
    {
        return a >= base && a + len <= base + size;
    }
};

/**
 * N-port store-and-forward switch. Each port is a Link to a
 * neighbour; routing tables map address ranges and routing IDs to
 * ports. Per-TLP forwarding latency models the switch's pipeline.
 */
class Switch : public sim::SimObject, public PcieNode
{
  public:
    Switch(sim::System &sys, std::string name,
           Tick forwardLatency = 150 * kTicksPerNs);

    /** Register a port; returns the port index. */
    int addPort(Link *out);

    /** Route memory requests in [base, base+size) to @p port. */
    void mapAddressRange(const AddrRange &range, int port);

    /** Route ID-based TLPs for @p id to @p port. */
    void mapRoutingId(Bdf id, int port);

    /** Port that receives TLPs matching no table entry (-1 = drop). */
    void setDefaultPort(int port) { defaultPort_ = port; }

    // PcieNode interface
    void receiveTlp(const TlpPtr &tlp, PcieNode *from) override;
    const std::string &nodeName() const override { return name(); }

    sim::StatGroup &stats() { return stats_; }
    sim::StatGroup *statGroup() override { return &stats_; }

    void reset() override { stats_.reset(); }

  private:
    int routePort(const Tlp &tlp) const;

    std::vector<Link *> ports_;
    std::vector<std::pair<AddrRange, int>> addrMap_;
    std::map<std::uint16_t, int> idMap_;
    int defaultPort_ = -1;
    Tick forwardLatency_;
    sim::StatGroup stats_;

    /** Typed handles resolved once; no name lookup per TLP. */
    struct Handles
    {
        explicit Handles(sim::StatGroup &g)
            : forwarded(g.counterHandle("forwarded")),
              dropped(g.counterHandle("dropped"))
        {}

        obs::CounterHandle forwarded;
        obs::CounterHandle dropped;
    } s_;
};

} // namespace ccai::pcie

#endif // CCAI_PCIE_SWITCH_HH
